//! The certain⁺/possible? approximation pair on the batched columnar core.
//!
//! Same semantics as the row pair executor in [`super::super::approx`]
//! (kept as the differential-fuzz reference) — every operator produces an
//! under-approximating `certain` batch and an over-approximating `possible`
//! batch — but the valuation-aware operators now run the batch-granular
//! ground/symbolic run split:
//!
//! * the **certain** side of every operator is syntactic, so it rides the
//!   shared columnar kernels directly (hash join, membership, division);
//! * the **possible** side partitions the build input with
//!   [`ColumnBatch::ground_split`] — ground runs go through the tight
//!   `RowTable` probe, and only the symbolic remainder pays the per-row
//!   full-predicate / [`unifiable_pairs`] fallback. [`OpStats::ground_rows`]
//!   and [`OpStats::symbolic_rows`] record how probe traffic routed.
//!
//! This is where the split earns its keep: on a mostly-ground database the
//! possible side degenerates to the plain hash path, with the symbolic
//! fallback paid only for the few null-bearing rows.

use std::collections::HashMap;
use std::rc::Rc;

use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relmodel::batch::{morsel_ranges, morsel_rows, ColumnBatch, RunSplit};
use relmodel::value::Truth;
use relmodel::Database;

use super::super::{join_predicate, OpStats};
use super::{
    build_key_table, build_key_table_for, divide_syntactic, hash_key, membership_keep, product,
    project_dedup, select_rows, syntactic_join, union_batches, RowTable,
};
use crate::approx::{unifiable_pairs, ApproxAnswer};

/// Pair-evaluates a physical plan on the batched core: the columnar
/// counterpart of [`super::super::approx::execute_approx`].
pub fn execute_approx(plan: &PhysicalPlan, db: &Database) -> ApproxAnswer {
    execute_approx_counted(plan, db).0
}

/// [`execute_approx`] plus the operator telemetry.
pub fn execute_approx_counted(plan: &PhysicalPlan, db: &Database) -> (ApproxAnswer, OpStats) {
    execute_approx_between(plan, db, db)
}

/// [`execute_approx_counted`] with an explicit morsel size — the engine
/// threads its configured size through here so long-lived services control
/// batching per request rather than per process.
pub fn execute_approx_counted_with_morsel(
    plan: &PhysicalPlan,
    db: &Database,
    morsel: usize,
) -> (ApproxAnswer, OpStats) {
    execute_approx_between_with_morsel(plan, db, db, morsel)
}

/// Pair-evaluates over an **interval** of databases — certain side reads
/// leaves from `lower`, possible side from `upper` — with the same
/// soundness invariant as the row version (see
/// [`super::super::approx::execute_approx_between`]); consistent query
/// answering's conflict-free-core approximation calls this directly.
pub fn execute_approx_between(
    plan: &PhysicalPlan,
    lower: &Database,
    upper: &Database,
) -> (ApproxAnswer, OpStats) {
    execute_approx_between_with_morsel(plan, lower, upper, morsel_rows())
}

/// [`execute_approx_between`] with an explicit morsel size, for the
/// differential tests and benches.
pub fn execute_approx_between_with_morsel(
    plan: &PhysicalPlan,
    lower: &Database,
    upper: &Database,
    morsel: usize,
) -> (ApproxAnswer, OpStats) {
    let mut exec = ColApproxExec {
        lower,
        upper,
        scans: HashMap::new(),
        delta_lower: None,
        delta_upper: None,
        morsel: morsel.max(1),
        stats: OpStats::default(),
    };
    let pair = exec.eval(plan.root());
    (
        ApproxAnswer {
            certain: pair.certain.to_relation(),
            possible: pair.possible.to_relation(),
        },
        exec.stats,
    )
}

/// One operator's output: an under-approximating and an over-approximating
/// batch, both duplicate-free.
#[derive(Clone)]
struct PairBatch {
    certain: Rc<ColumnBatch>,
    possible: Rc<ColumnBatch>,
}

struct ColApproxExec<'a> {
    lower: &'a Database,
    upper: &'a Database,
    /// Per-execution transpose cache; with `lower == upper` both sides of a
    /// scan share one batch.
    scans: HashMap<&'a str, PairBatch>,
    delta_lower: Option<Rc<ColumnBatch>>,
    delta_upper: Option<Rc<ColumnBatch>>,
    morsel: usize,
    stats: OpStats,
}

impl<'a> ColApproxExec<'a> {
    fn eval(&mut self, node: &'a PhysNode) -> PairBatch {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => {
                let (lower, upper) = (self.lower, self.upper);
                self.scans
                    .entry(name.as_str())
                    .or_insert_with(|| {
                        let expect = "physical plans are lowered from typechecked queries";
                        let possible = Rc::new(ColumnBatch::from_relation(
                            upper.relation(name).expect(expect),
                        ));
                        let certain = if std::ptr::eq(lower, upper) {
                            Rc::clone(&possible)
                        } else {
                            Rc::new(ColumnBatch::from_relation(
                                lower.relation(name).expect(expect),
                            ))
                        };
                        PairBatch { certain, possible }
                    })
                    .clone()
            }
            // Literal nulls are rigid: only complete literal tuples are
            // certain (see the logical evaluator for the counterexample).
            PhysOp::Values(rel) => {
                let possible = ColumnBatch::from_relation(rel);
                let ground: Vec<u32> = (0..possible.len())
                    .filter(|&r| possible.row_is_ground(r))
                    .map(|r| r as u32)
                    .collect();
                PairBatch {
                    certain: Rc::new(possible.gather(&ground)),
                    possible: Rc::new(possible),
                }
            }
            PhysOp::Delta => {
                if self.delta_lower.is_none() {
                    let rows = super::super::delta_diagonal(self.lower);
                    self.delta_lower = Some(Rc::new(ColumnBatch::from_rows(2, rows.iter())));
                }
                let certain = Rc::clone(self.delta_lower.as_ref().expect("just initialised"));
                let possible = if std::ptr::eq(self.lower, self.upper) {
                    Rc::clone(&certain)
                } else {
                    if self.delta_upper.is_none() {
                        let rows = super::super::delta_diagonal(self.upper);
                        self.delta_upper = Some(Rc::new(ColumnBatch::from_rows(2, rows.iter())));
                    }
                    Rc::clone(self.delta_upper.as_ref().expect("just initialised"))
                };
                PairBatch { certain, possible }
            }
            PhysOp::Filter { input, predicate } => {
                let input = self.eval(input);
                let keep_certain =
                    select_rows(&input.certain, self.morsel, &mut self.stats, |row| {
                        predicate
                            .eval_3vl_marked_on(&|i| input.certain.value(i, row))
                            .is_true()
                    });
                let keep_possible =
                    select_rows(&input.possible, self.morsel, &mut self.stats, |row| {
                        predicate.eval_3vl_marked_on(&|i| input.possible.value(i, row))
                            != Truth::False
                    });
                PairBatch {
                    certain: gathered(&input.certain, keep_certain),
                    possible: gathered(&input.possible, keep_possible),
                }
            }
            PhysOp::Project { input, columns } => {
                let input = self.eval(input);
                PairBatch {
                    certain: Rc::new(project_dedup(
                        &input.certain,
                        columns,
                        self.morsel,
                        &mut self.stats,
                    )),
                    possible: Rc::new(project_dedup(
                        &input.possible,
                        columns,
                        self.morsel,
                        &mut self.stats,
                    )),
                }
            }
            PhysOp::NestedProduct { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                PairBatch {
                    certain: Rc::new(product(
                        &l.certain,
                        &r.certain,
                        self.morsel,
                        &mut self.stats,
                    )),
                    possible: Rc::new(product(
                        &l.possible,
                        &r.possible,
                        self.morsel,
                        &mut self.stats,
                    )),
                }
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let left_arity = left.arity();
                let l = self.eval(left);
                let r = self.eval(right);
                // Certain side: marked-3VL calls an equality `True` exactly
                // when the values are syntactically identical, so the shared
                // syntactic kernel applies; the residual is re-checked under
                // marked-3VL truth.
                let (lc, rc) = (&l.certain, &r.certain);
                let certain = syntactic_join(
                    lc,
                    rc,
                    keys,
                    |li, ri| {
                        residual.as_ref().is_none_or(|p| {
                            p.eval_3vl_marked_on(&|i| {
                                if i < left_arity {
                                    lc.value(i, li)
                                } else {
                                    rc.value(i - left_arity, ri)
                                }
                            })
                            .is_true()
                        })
                    },
                    self.morsel,
                    &mut self.stats,
                );
                let possible =
                    self.possible_join(&l.possible, &r.possible, keys, left_arity, residual);
                PairBatch {
                    certain: Rc::new(certain),
                    possible: Rc::new(possible),
                }
            }
            PhysOp::Union { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                PairBatch {
                    certain: Rc::new(union_batches(
                        &l.certain,
                        &r.certain,
                        self.morsel,
                        &mut self.stats,
                    )),
                    possible: Rc::new(union_batches(
                        &l.possible,
                        &r.possible,
                        self.morsel,
                        &mut self.stats,
                    )),
                }
            }
            PhysOp::Intersect { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                let keep =
                    membership_keep(&l.certain, &r.certain, true, self.morsel, &mut self.stats);
                // Possibly in both: some valuation unifies the row with a
                // row possibly on the right.
                let keep_possible = self.unifiable_keep(&l.possible, &r.possible, true);
                PairBatch {
                    certain: gathered(&l.certain, keep),
                    possible: gathered(&l.possible, keep_possible),
                }
            }
            PhysOp::Difference { left, right } => {
                let l = self.eval(left);
                let r = self.eval(right);
                // Certainly in A and not even possibly equal to anything
                // possibly in B.
                let keep_certain = self.unifiable_keep(&l.certain, &r.possible, false);
                // Possibly in A and not certainly in B.
                let keep_possible =
                    membership_keep(&l.possible, &r.certain, false, self.morsel, &mut self.stats);
                PairBatch {
                    certain: gathered(&l.certain, keep_certain),
                    possible: gathered(&l.possible, keep_possible),
                }
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                let prefix_arity = node.arity();
                let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
                // Certain: every possibly-present divisor row must pair with
                // the prefix in the certain dividend — syntactic membership,
                // so the shared division kernel applies.
                let certain = divide_syntactic(
                    &dividend.certain,
                    &divisor.possible,
                    prefix_arity,
                    self.morsel,
                    &mut self.stats,
                );
                PairBatch {
                    certain: Rc::new(certain),
                    possible: Rc::new(project_dedup(
                        &dividend.possible,
                        &prefix_cols,
                        self.morsel,
                        &mut self.stats,
                    )),
                }
            }
        }
    }

    /// The possible side of a hash join: keep every pair some valuation
    /// could join. The build side splits into a ground run (hashed) and a
    /// symbolic remainder (full-predicate fallback); a ground probe key
    /// checks only the residual against bucket matches — their key atoms
    /// are syntactically equal, hence marked-`True` — while symbolic keys
    /// on either side re-check the full join predicate (`≠ False`).
    fn possible_join(
        &mut self,
        lp: &ColumnBatch,
        rp: &ColumnBatch,
        keys: &[(usize, usize)],
        left_arity: usize,
        residual: &Option<relalgebra::predicate::Predicate>,
    ) -> ColumnBatch {
        let left_cols: Vec<usize> = keys.iter().map(|(c, _)| *c).collect();
        let right_cols: Vec<usize> = keys.iter().map(|(_, c)| *c).collect();
        let full = join_predicate(keys, left_arity, residual);
        let split = rp.ground_split(&right_cols);
        let (table, symbolic): (RowTable, &[u32]) = match &split {
            RunSplit::AllGround => (build_key_table(rp, &right_cols), &[]),
            RunSplit::Mixed { ground, symbolic } => {
                (build_key_table_for(rp, &right_cols, ground), symbolic)
            }
        };
        let full_ok = |lrow: usize, rrow: usize| {
            full.eval_3vl_marked_on(&|i| {
                if i < left_arity {
                    lp.value(i, lrow)
                } else {
                    rp.value(i - left_arity, rrow)
                }
            }) != Truth::False
        };
        let residual_ok = |lrow: usize, rrow: usize| {
            residual.as_ref().is_none_or(|p| {
                p.eval_3vl_marked_on(&|i| {
                    if i < left_arity {
                        lp.value(i, lrow)
                    } else {
                        rp.value(i - left_arity, rrow)
                    }
                }) != Truth::False
            })
        };
        let mut out = ColumnBatch::with_capacity(lp.arity() + rp.arity(), lp.len());
        for range in morsel_ranges(lp.len(), self.morsel) {
            self.stats.batches += 1;
            for lrow in range {
                if lp.key_is_ground(lrow, &left_cols) {
                    self.stats.ground_rows += 1;
                    let h = hash_key(lp, &left_cols, lrow);
                    for rrow in table.probe(h) {
                        let rrow = rrow as usize;
                        if rp.keys_equal(rrow, &right_cols, lp, lrow, &left_cols)
                            && residual_ok(lrow, rrow)
                        {
                            out.push_concat(lp, lrow, rp, rrow);
                        }
                    }
                    self.stats.fallback_pairs += symbolic.len();
                    for &rrow in symbolic {
                        if full_ok(lrow, rrow as usize) {
                            out.push_concat(lp, lrow, rp, rrow as usize);
                        }
                    }
                } else {
                    self.stats.symbolic_rows += 1;
                    self.stats.fallback_pairs += rp.len();
                    for rrow in 0..rp.len() {
                        if full_ok(lrow, rrow) {
                            out.push_concat(lp, lrow, rp, rrow);
                        }
                    }
                }
            }
        }
        out
    }

    /// The rows of `probe` for which (`keep_match`) / for which **no**
    /// (`!keep_match`) row of `pool` is unifiable with them. Ground probe
    /// rows resolve against the pool's ground run by hash — for two ground
    /// rows, unifiable ⟺ syntactically equal — and pay `unifiable_pairs`
    /// only against the symbolic remainder; symbolic probe rows check the
    /// whole pool.
    fn unifiable_keep(
        &mut self,
        probe: &ColumnBatch,
        pool: &ColumnBatch,
        keep_match: bool,
    ) -> Vec<u32> {
        let all_cols: Vec<usize> = (0..probe.arity()).collect();
        let split = pool.ground_split(&all_cols);
        let (table, symbolic): (RowTable, &[u32]) = match &split {
            RunSplit::AllGround => (build_key_table(pool, &all_cols), &[]),
            RunSplit::Mixed { ground, symbolic } => {
                (build_key_table_for(pool, &all_cols, ground), symbolic)
            }
        };
        let unif = |prow: usize, crow: usize| {
            unifiable_pairs((0..probe.arity()).map(|c| (probe.value(c, prow), pool.value(c, crow))))
        };
        let mut keep = Vec::new();
        for range in morsel_ranges(probe.len(), self.morsel) {
            self.stats.batches += 1;
            for row in range {
                let matched = if probe.row_is_ground(row) {
                    self.stats.ground_rows += 1;
                    let h = hash_key(probe, &all_cols, row);
                    table
                        .probe(h)
                        .any(|p| pool.rows_equal(p as usize, probe, row))
                        || symbolic.iter().any(|&p| unif(row, p as usize))
                } else {
                    self.stats.symbolic_rows += 1;
                    (0..pool.len()).any(|p| unif(row, p))
                };
                if matched == keep_match {
                    keep.push(row as u32);
                }
            }
        }
        keep
    }
}

/// Wraps a gather, reusing the input when every row survived.
fn gathered(batch: &Rc<ColumnBatch>, keep: Vec<u32>) -> Rc<ColumnBatch> {
    if keep.len() == batch.len() {
        Rc::clone(batch)
    } else {
        Rc::new(batch.gather(&keep))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Relation, Tuple, Value};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .tuple("R", vec![Value::null(1), Value::int(10)])
            .ints("S", &[10, 100])
            .tuple("S", vec![Value::null(0), Value::int(200)])
            .ints("U", &[10])
            .tuple("U", vec![Value::null(2)])
            .build()
    }

    fn cases() -> Vec<RaExpr> {
        let r = RaExpr::relation("R");
        let join = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        vec![
            r.clone(),
            r.clone().project(vec![0]),
            r.clone()
                .select(Predicate::neq(Operand::col(0), Operand::int(1))),
            join.clone(),
            join.clone().project(vec![0, 3]),
            r.clone().project(vec![1]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta.union(RaExpr::Delta),
            RaExpr::values(Relation::from_tuples(
                2,
                vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
            ))
            .union(r.clone()),
            r.clone()
                .difference(RaExpr::relation("S"))
                .select(Predicate::eq(Operand::col(0), Operand::int(2))),
        ]
    }

    /// The batched pair executor must agree with the row pair executor on
    /// both sides, for every operator, at every morsel size.
    #[test]
    fn columnar_pair_matches_row_pair_across_morsel_sizes() {
        let d = db();
        for q in cases() {
            let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
            let reference = super::super::super::approx::execute_approx(plan.physical(), &d);
            for morsel in [1, 2, 3, 1024] {
                let (batched, _) =
                    execute_approx_between_with_morsel(plan.physical(), &d, &d, morsel);
                assert_eq!(
                    batched.certain, reference.certain,
                    "certain diverged for {q} (morsel {morsel})"
                );
                assert_eq!(
                    batched.possible, reference.possible,
                    "possible diverged for {q} (morsel {morsel})"
                );
            }
        }
    }

    /// Interval evaluation must match the row version too — this is the
    /// entry point consistent query answering relies on.
    #[test]
    fn interval_evaluation_matches_row_reference() {
        let d = db();
        let lower = d.complete_part();
        for q in cases() {
            let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
            let (reference, _) =
                super::super::super::approx::execute_approx_between(plan.physical(), &lower, &d);
            let (batched, _) = execute_approx_between(plan.physical(), &lower, &d);
            assert_eq!(batched.certain, reference.certain, "certain for {q}");
            assert_eq!(batched.possible, reference.possible, "possible for {q}");
        }
    }

    #[test]
    fn probe_traffic_routes_through_ground_and_symbolic_runs() {
        let d = db();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let plan = PlannedQuery::new(q, d.schema()).unwrap();
        let (_, stats) = execute_approx_counted(plan.physical(), &d);
        assert!(stats.ground_rows > 0, "R(1,10) probes the ground run");
        assert!(stats.symbolic_rows > 0, "R(2,⊥0) takes the fallback");
        assert!(stats.fallback_pairs > 0);
        assert!(stats.batches > 0);
    }
}
