//! Shard-scoped **split execution**: the batched core of the enumeration
//! folds (worlds and repairs), where one physical plan is evaluated for
//! thousands of *elements* (possible worlds / subset repairs) that differ
//! from each other in only a handful of rows.
//!
//! A world is the ground rows of each relation (invariant across every
//! valuation) plus a small valuation-dependent remainder — the
//! [`relmodel::batch::OverlayBatch`] image of the symbolic rows and any OWA
//! extension tuples. A repair is the conflict-free core (invariant) plus the
//! included conflict vertices — a tuple-survival mask over the vertex batch.
//! [`ShardExec`] exploits that shape: every node of the plan evaluates to a
//! [`Split`] — a **stable** batch equal across all elements of the shard and
//! a per-element **volatile** remainder — under the set contract
//!
//! > `stable ∪ volatile  ==  plain-executor result`, as sets.
//!
//! Duplicates between (or within) the two parts are permitted: every
//! columnar kernel is duplicate-tolerant and the root conversion to
//! [`Relation`](relmodel::Relation) merges. Stable results, and the hash
//! tables over them (join build sides, membership tables), are computed for
//! the **first** element and reused by every later element of the shard —
//! [`crate::exec::OpStats::tables_built`] / `tables_reused` count exactly
//! this — so the marginal cost of an element is proportional to its volatile
//! rows, not to the database.
//!
//! Per-operator decomposition (`L = Ls ∪ Lv`, `R = Rs ∪ Rv`):
//!
//! * monotone operators (σ, π, ×, ⋈, ∪, ∩) distribute over the union of
//!   parts, so `stable′ = op(Ls, Rs)` is cached and only the volatile
//!   cross-terms run per element;
//! * `−` caches `Ls ∖ Rs` only when the right subtree is **static**
//!   (provably element-invariant); otherwise the node falls back to plain
//!   per-element evaluation of the concatenated parts;
//! * `÷` is monotone in neither argument's parts in a cacheable way, so a
//!   non-static division always evaluates plainly (its subtrees still
//!   benefit from caching);
//! * fully static subtrees (ground-only scans, literals) evaluate **once**,
//!   volatile permanently empty.

use std::collections::HashMap;
use std::rc::Rc;

use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relalgebra::predicate::Predicate;
use relmodel::batch::{morsel_ranges, ColumnBatch};

use super::{
    build_key_table, divide_syntactic, hash_key, membership_keep, product, project_dedup,
    select_rows, syntactic_join, union_batches, RowTable,
};
use crate::exec::OpStats;

/// One node's result for one element: the shard-invariant rows plus this
/// element's remainder. `stable ∪ volatile` equals the plain executor's
/// result **as a set**; overlaps between the parts are allowed and collapse
/// at the root conversion.
#[derive(Debug, Clone)]
pub struct Split {
    /// Rows identical across every element of the shard (computed once and
    /// cached; cheap `Rc` handle).
    pub stable: Rc<ColumnBatch>,
    /// This element's rows beyond the stable part.
    pub volatile: Rc<ColumnBatch>,
}

impl Split {
    /// Is the element's full result empty?
    pub fn is_empty(&self) -> bool {
        self.stable.is_empty() && self.volatile.is_empty()
    }
}

/// The shard-invariant leaf data a [`ShardExec`] is constructed over.
#[derive(Debug, Default)]
pub struct ShardSetup {
    /// Relation name → its element-invariant rows: the ground rows of the
    /// base batch for worlds, the conflict-free core rows for repairs.
    pub stable_scans: HashMap<String, Rc<ColumnBatch>>,
    /// Relation name → is the relation **identical** in every element of
    /// the shard (no symbolic rows, no OWA extension candidates, no
    /// conflict vertices)?
    pub static_scans: HashMap<String, bool>,
    /// The element-invariant part of the Δ diagonal (one `(c, c)` row per
    /// base constant — base constants survive into every element).
    pub stable_delta: Rc<ColumnBatch>,
    /// Is Δ invariant across elements (no element ever contributes a
    /// constant beyond the base ones)?
    pub static_delta: bool,
}

/// Per-element leaf data: each relation's volatile remainder and Δ's extra
/// diagonal rows. Maps are borrowed so the enumeration loop can refill one
/// set of scratch batches per element.
#[derive(Debug)]
pub struct ElementInput<'e> {
    /// Relation name → this element's extra rows (valuation images of the
    /// symbolic rows, OWA extension tuples, included conflict vertices).
    /// A missing name means no extra rows.
    pub volatile_scans: &'e HashMap<String, Rc<ColumnBatch>>,
    /// This element's extra Δ diagonal rows (constants introduced by the
    /// valuation / extensions / included vertices, minus the base ones).
    pub volatile_delta: &'e Rc<ColumnBatch>,
}

#[derive(Default)]
struct NodeCache {
    /// The node's stable result (first-element computation).
    stable: Option<Rc<ColumnBatch>>,
    /// Full-row membership table over the node's stable result.
    full_table: Option<Rc<RowTable>>,
    /// Key-column tables over the node's stable result (join build sides).
    key_tables: Vec<(Vec<usize>, Rc<RowTable>)>,
}

/// The split executor for one enumeration shard: construct once per worker,
/// call [`ShardExec::eval_element`] once per world/repair. All caches are
/// keyed by plan-node address — the plan outlives the executor and its boxed
/// tree never moves, so addresses are stable identities.
pub struct ShardExec<'p> {
    plan: &'p PhysicalPlan,
    setup: ShardSetup,
    morsel: usize,
    caches: HashMap<usize, NodeCache>,
    statics: HashMap<usize, bool>,
    empties: HashMap<usize, Rc<ColumnBatch>>,
    /// Operator telemetry accumulated across every element of the shard.
    pub stats: OpStats,
}

impl<'p> ShardExec<'p> {
    /// A fresh executor over one plan and one shard's invariant leaf data.
    pub fn new(plan: &'p PhysicalPlan, morsel: usize, setup: ShardSetup) -> Self {
        ShardExec {
            plan,
            setup,
            morsel: morsel.max(1),
            caches: HashMap::new(),
            statics: HashMap::new(),
            empties: HashMap::new(),
            stats: OpStats::default(),
        }
    }

    /// Evaluates the plan for one element. The returned split's `stable`
    /// part is the same batch for every element of the shard.
    pub fn eval_element(&mut self, elem: &ElementInput<'_>) -> Split {
        let root: &'p PhysNode = self.plan.root();
        self.eval(root, elem)
    }

    fn key(node: &PhysNode) -> usize {
        node as *const PhysNode as usize
    }

    fn empty(&mut self, arity: usize) -> Rc<ColumnBatch> {
        Rc::clone(
            self.empties
                .entry(arity)
                .or_insert_with(|| Rc::new(ColumnBatch::new(arity))),
        )
    }

    fn cached_stable(&self, key: usize) -> Option<Rc<ColumnBatch>> {
        self.caches.get(&key).and_then(|c| c.stable.clone())
    }

    fn store_stable(&mut self, key: usize, batch: Rc<ColumnBatch>) -> Rc<ColumnBatch> {
        self.caches.entry(key).or_default().stable = Some(Rc::clone(&batch));
        batch
    }

    /// The cached full-row membership table over a node's stable result.
    fn full_table(&mut self, node_key: usize, batch: &ColumnBatch) -> Rc<RowTable> {
        if let Some(t) = self
            .caches
            .get(&node_key)
            .and_then(|c| c.full_table.clone())
        {
            self.stats.tables_reused += 1;
            return t;
        }
        let all: Vec<usize> = (0..batch.arity()).collect();
        self.stats.tables_built += 1;
        self.stats.build_rows += batch.len();
        let t = Rc::new(build_key_table(batch, &all));
        self.caches.entry(node_key).or_default().full_table = Some(Rc::clone(&t));
        t
    }

    /// The cached key-column table over a node's stable result.
    fn key_table(&mut self, node_key: usize, batch: &ColumnBatch, cols: &[usize]) -> Rc<RowTable> {
        if let Some(cache) = self.caches.get(&node_key) {
            if let Some((_, t)) = cache.key_tables.iter().find(|(k, _)| k == cols) {
                self.stats.tables_reused += 1;
                return Rc::clone(t);
            }
        }
        self.stats.tables_built += 1;
        self.stats.build_rows += batch.len();
        let t = Rc::new(build_key_table(batch, cols));
        self.caches
            .entry(node_key)
            .or_default()
            .key_tables
            .push((cols.to_vec(), Rc::clone(&t)));
        t
    }

    /// Is the node's whole subtree element-invariant?
    fn is_static(&mut self, node: &'p PhysNode) -> bool {
        let key = Self::key(node);
        if let Some(&s) = self.statics.get(&key) {
            return s;
        }
        let s = match node.op() {
            PhysOp::Scan(name) => self
                .setup
                .static_scans
                .get(name.as_str())
                .copied()
                .unwrap_or(false),
            PhysOp::Values(_) => true,
            PhysOp::Delta => self.setup.static_delta,
            PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => self.is_static(input),
            PhysOp::NestedProduct { left, right }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right }
            | PhysOp::Intersect { left, right }
            | PhysOp::Divide { left, right } => self.is_static(left) && self.is_static(right),
        };
        self.statics.insert(key, s);
        s
    }

    /// Plain evaluation of a static subtree from the stable leaves — runs
    /// once per shard, cached.
    fn eval_static(&mut self, node: &'p PhysNode) -> Rc<ColumnBatch> {
        let key = Self::key(node);
        if let Some(b) = self.cached_stable(key) {
            return b;
        }
        self.stats.operators += 1;
        let out: Rc<ColumnBatch> = match node.op() {
            PhysOp::Scan(name) => Rc::clone(
                self.setup
                    .stable_scans
                    .get(name.as_str())
                    .expect("shard setup covers every scanned relation"),
            ),
            PhysOp::Values(rel) => Rc::new(ColumnBatch::from_relation(rel)),
            PhysOp::Delta => Rc::clone(&self.setup.stable_delta),
            PhysOp::Filter { input, predicate } => {
                let b = self.eval_static(input);
                let keep = select_rows(&b, self.morsel, &mut self.stats, |row| {
                    predicate.eval_naive_on(&|i| b.value(i, row))
                });
                if keep.len() == b.len() {
                    b
                } else {
                    Rc::new(b.gather(&keep))
                }
            }
            PhysOp::Project { input, columns } => {
                let b = self.eval_static(input);
                Rc::new(project_dedup(&b, columns, self.morsel, &mut self.stats))
            }
            PhysOp::NestedProduct { left, right } => {
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                Rc::new(product(&l, &r, self.morsel, &mut self.stats))
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let la = left.arity();
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                let out = syntactic_join(
                    &l,
                    &r,
                    keys,
                    |li, ri| residual_ok(residual, la, &l, li, &r, ri),
                    self.morsel,
                    &mut self.stats,
                );
                Rc::new(out)
            }
            PhysOp::Union { left, right } => {
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                Rc::new(union_batches(&l, &r, self.morsel, &mut self.stats))
            }
            PhysOp::Difference { left, right } => {
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                let keep = membership_keep(&l, &r, false, self.morsel, &mut self.stats);
                Rc::new(l.gather(&keep))
            }
            PhysOp::Intersect { left, right } => {
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                let keep = membership_keep(&l, &r, true, self.morsel, &mut self.stats);
                Rc::new(l.gather(&keep))
            }
            PhysOp::Divide { left, right } => {
                let l = self.eval_static(left);
                let r = self.eval_static(right);
                Rc::new(divide_syntactic(
                    &l,
                    &r,
                    node.arity(),
                    self.morsel,
                    &mut self.stats,
                ))
            }
        };
        self.store_stable(key, out)
    }

    fn eval(&mut self, node: &'p PhysNode, elem: &ElementInput<'_>) -> Split {
        if self.is_static(node) {
            let stable = self.eval_static(node);
            let volatile = self.empty(node.arity());
            return Split { stable, volatile };
        }
        self.stats.operators += 1;
        let key = Self::key(node);
        let arity = node.arity();
        match node.op() {
            PhysOp::Scan(name) => {
                let stable = match self.setup.stable_scans.get(name.as_str()) {
                    Some(b) => Rc::clone(b),
                    None => self.empty(arity),
                };
                let volatile = match elem.volatile_scans.get(name.as_str()) {
                    Some(b) => Rc::clone(b),
                    None => self.empty(arity),
                };
                Split { stable, volatile }
            }
            PhysOp::Values(_) => unreachable!("Values subtrees are static"),
            PhysOp::Delta => Split {
                stable: Rc::clone(&self.setup.stable_delta),
                volatile: Rc::clone(elem.volatile_delta),
            },
            PhysOp::Filter { input, predicate } => {
                let c = self.eval(input, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let b = &c.stable;
                        let keep = select_rows(b, self.morsel, &mut self.stats, |row| {
                            predicate.eval_naive_on(&|i| b.value(i, row))
                        });
                        let s = if keep.len() == b.len() {
                            Rc::clone(b)
                        } else {
                            Rc::new(b.gather(&keep))
                        };
                        self.store_stable(key, s)
                    }
                };
                let volatile = if c.volatile.is_empty() {
                    self.empty(arity)
                } else {
                    let b = &c.volatile;
                    let keep = select_rows(b, self.morsel, &mut self.stats, |row| {
                        predicate.eval_naive_on(&|i| b.value(i, row))
                    });
                    Rc::new(b.gather(&keep))
                };
                Split { stable, volatile }
            }
            PhysOp::Project { input, columns } => {
                let c = self.eval(input, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let s = Rc::new(project_dedup(
                            &c.stable,
                            columns,
                            self.morsel,
                            &mut self.stats,
                        ));
                        self.store_stable(key, s)
                    }
                };
                let volatile = if c.volatile.is_empty() {
                    self.empty(arity)
                } else {
                    Rc::new(project_dedup(
                        &c.volatile,
                        columns,
                        self.morsel,
                        &mut self.stats,
                    ))
                };
                Split { stable, volatile }
            }
            PhysOp::NestedProduct { left, right } => {
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let s =
                            Rc::new(product(&l.stable, &r.stable, self.morsel, &mut self.stats));
                        self.store_stable(key, s)
                    }
                };
                let volatile = if l.volatile.is_empty() && r.volatile.is_empty() {
                    self.empty(arity)
                } else {
                    let mut out = ColumnBatch::new(arity);
                    append_product(
                        &mut out,
                        &l.stable,
                        &r.volatile,
                        self.morsel,
                        &mut self.stats,
                    );
                    append_product(
                        &mut out,
                        &l.volatile,
                        &r.stable,
                        self.morsel,
                        &mut self.stats,
                    );
                    append_product(
                        &mut out,
                        &l.volatile,
                        &r.volatile,
                        self.morsel,
                        &mut self.stats,
                    );
                    Rc::new(out)
                };
                Split { stable, volatile }
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let la = left.arity();
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let (ls, rs) = (&l.stable, &r.stable);
                        let out = syntactic_join(
                            ls,
                            rs,
                            keys,
                            |li, ri| residual_ok(residual, la, ls, li, rs, ri),
                            self.morsel,
                            &mut self.stats,
                        );
                        self.store_stable(key, Rc::new(out))
                    }
                };
                let volatile = if l.volatile.is_empty() && r.volatile.is_empty() {
                    self.empty(arity)
                } else {
                    let left_cols: Vec<usize> = keys.iter().map(|(lc, _)| *lc).collect();
                    let right_cols: Vec<usize> = keys.iter().map(|(_, rc)| *rc).collect();
                    let mut out = ColumnBatch::new(arity);
                    // Ls ⋈ Rv: probe the volatile right rows against the
                    // cached key table over the stable left rows.
                    if !r.volatile.is_empty() && !l.stable.is_empty() {
                        let table = self.key_table(Self::key(left), &l.stable, &left_cols);
                        probe_join(
                            &mut out,
                            &l.stable,
                            &table,
                            &left_cols,
                            true,
                            &r.volatile,
                            &right_cols,
                            residual,
                            la,
                            self.morsel,
                            &mut self.stats,
                        );
                    }
                    // Lv ⋈ Rs, via the cached key table over the stable right.
                    if !l.volatile.is_empty() && !r.stable.is_empty() {
                        let table = self.key_table(Self::key(right), &r.stable, &right_cols);
                        probe_join(
                            &mut out,
                            &r.stable,
                            &table,
                            &right_cols,
                            false,
                            &l.volatile,
                            &left_cols,
                            residual,
                            la,
                            self.morsel,
                            &mut self.stats,
                        );
                    }
                    // Lv ⋈ Rv: both tiny; the ordinary kernel suffices.
                    if !l.volatile.is_empty() && !r.volatile.is_empty() {
                        let (lv, rv) = (&l.volatile, &r.volatile);
                        let small = syntactic_join(
                            lv,
                            rv,
                            keys,
                            |li, ri| residual_ok(residual, la, lv, li, rv, ri),
                            self.morsel,
                            &mut self.stats,
                        );
                        out.append(&small);
                    }
                    self.stats.join_rows_out += out.len();
                    Rc::new(out)
                };
                Split { stable, volatile }
            }
            PhysOp::Union { left, right } => {
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let s = Rc::new(union_batches(
                            &l.stable,
                            &r.stable,
                            self.morsel,
                            &mut self.stats,
                        ));
                        self.store_stable(key, s)
                    }
                };
                let volatile = match (l.volatile.is_empty(), r.volatile.is_empty()) {
                    (true, true) => self.empty(arity),
                    (false, true) => Rc::clone(&l.volatile),
                    (true, false) => Rc::clone(&r.volatile),
                    (false, false) => {
                        let mut out = l.volatile.as_ref().clone();
                        out.append(&r.volatile);
                        Rc::new(out)
                    }
                };
                Split { stable, volatile }
            }
            PhysOp::Difference { left, right } => {
                let right_static = self.is_static(right);
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                if right_static {
                    // Rs is the complete right result in every element:
                    // L ∖ R = (Ls ∖ Rs) ∪ (Lv ∖ Rs).
                    let stable = match self.cached_stable(key) {
                        Some(s) => s,
                        None => {
                            let keep = membership_keep(
                                &l.stable,
                                &r.stable,
                                false,
                                self.morsel,
                                &mut self.stats,
                            );
                            let s = Rc::new(l.stable.gather(&keep));
                            self.store_stable(key, s)
                        }
                    };
                    let volatile = if l.volatile.is_empty() {
                        self.empty(arity)
                    } else if r.stable.is_empty() {
                        Rc::clone(&l.volatile)
                    } else {
                        let table = self.full_table(Self::key(right), &r.stable);
                        let lv = &l.volatile;
                        let all: Vec<usize> = (0..lv.arity()).collect();
                        self.stats.ground_rows += lv.len();
                        let mut keep = Vec::new();
                        for row in 0..lv.len() {
                            let h = hash_key(lv, &all, row);
                            let member = table
                                .probe(h)
                                .any(|rr| r.stable.rows_equal(rr as usize, lv, row));
                            if !member {
                                keep.push(row as u32);
                            }
                        }
                        Rc::new(lv.gather(&keep))
                    };
                    Split { stable, volatile }
                } else {
                    // The subtrahend varies per element: evaluate this node
                    // plainly (children still serve their cached parts).
                    let lf = concat_split(&l);
                    let rf = concat_split(&r);
                    let keep = membership_keep(&lf, &rf, false, self.morsel, &mut self.stats);
                    Split {
                        stable: self.empty(arity),
                        volatile: Rc::new(lf.gather(&keep)),
                    }
                }
            }
            PhysOp::Intersect { left, right } => {
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                let stable = match self.cached_stable(key) {
                    Some(s) => s,
                    None => {
                        let keep = membership_keep(
                            &l.stable,
                            &r.stable,
                            true,
                            self.morsel,
                            &mut self.stats,
                        );
                        let s = Rc::new(l.stable.gather(&keep));
                        self.store_stable(key, s)
                    }
                };
                let volatile = if l.volatile.is_empty() && r.volatile.is_empty() {
                    self.empty(arity)
                } else {
                    let mut out = ColumnBatch::new(arity);
                    // Lv rows present anywhere in R = Rs ∪ Rv.
                    if !l.volatile.is_empty() {
                        let rs_table = (!r.stable.is_empty())
                            .then(|| self.full_table(Self::key(right), &r.stable));
                        let lv = &l.volatile;
                        let all: Vec<usize> = (0..lv.arity()).collect();
                        self.stats.ground_rows += lv.len();
                        let mut keep = Vec::new();
                        for row in 0..lv.len() {
                            let h = hash_key(lv, &all, row);
                            let in_rs = rs_table.as_ref().is_some_and(|t| {
                                t.probe(h)
                                    .any(|rr| r.stable.rows_equal(rr as usize, lv, row))
                            });
                            let member = in_rs
                                || (0..r.volatile.len())
                                    .any(|vr| r.volatile.rows_equal(vr, lv, row));
                            if member {
                                keep.push(row as u32);
                            }
                        }
                        lv.gather_into(&keep, &mut out);
                    }
                    // Rv rows present in Ls (Rv ∩ Lv is already covered).
                    if !r.volatile.is_empty() && !l.stable.is_empty() {
                        let ls_table = self.full_table(Self::key(left), &l.stable);
                        let rv = &r.volatile;
                        let all: Vec<usize> = (0..rv.arity()).collect();
                        self.stats.ground_rows += rv.len();
                        let mut keep = Vec::new();
                        for row in 0..rv.len() {
                            let h = hash_key(rv, &all, row);
                            let member = ls_table
                                .probe(h)
                                .any(|lr| l.stable.rows_equal(lr as usize, rv, row));
                            if member {
                                keep.push(row as u32);
                            }
                        }
                        rv.gather_into(&keep, &mut out);
                    }
                    Rc::new(out)
                };
                Split { stable, volatile }
            }
            PhysOp::Divide { left, right } => {
                let l = self.eval(left, elem);
                let r = self.eval(right, elem);
                let lf = concat_split(&l);
                let rf = concat_split(&r);
                let out = divide_syntactic(&lf, &rf, arity, self.morsel, &mut self.stats);
                Split {
                    stable: self.empty(arity),
                    volatile: Rc::new(out),
                }
            }
        }
    }
}

/// An element's full result: stable when the volatile part is empty,
/// otherwise a fresh concatenation.
fn concat_split(s: &Split) -> Rc<ColumnBatch> {
    if s.volatile.is_empty() {
        Rc::clone(&s.stable)
    } else if s.stable.is_empty() {
        Rc::clone(&s.volatile)
    } else {
        let mut out = s.stable.as_ref().clone();
        out.append(&s.volatile);
        Rc::new(out)
    }
}

fn residual_ok(
    residual: &Option<Predicate>,
    la: usize,
    l: &ColumnBatch,
    li: usize,
    r: &ColumnBatch,
    ri: usize,
) -> bool {
    residual.as_ref().is_none_or(|p| {
        p.eval_naive_on(&|i| {
            if i < la {
                l.value(i, li)
            } else {
                r.value(i - la, ri)
            }
        })
    })
}

/// Appends the full cross product `l × r` onto `out`.
fn append_product(
    out: &mut ColumnBatch,
    l: &ColumnBatch,
    r: &ColumnBatch,
    morsel: usize,
    stats: &mut OpStats,
) {
    if l.is_empty() || r.is_empty() {
        return;
    }
    for range in morsel_ranges(l.len(), morsel) {
        stats.batches += 1;
        for li in range {
            for ri in 0..r.len() {
                out.push_concat(l, li, r, ri);
            }
        }
    }
}

/// Probes `probe`'s rows against a prebuilt key table over `build`, emitting
/// concatenated left-then-right rows that pass the residual. `build_is_left`
/// says which side of the output the build batch occupies.
#[allow(clippy::too_many_arguments)]
fn probe_join(
    out: &mut ColumnBatch,
    build: &ColumnBatch,
    table: &RowTable,
    build_cols: &[usize],
    build_is_left: bool,
    probe: &ColumnBatch,
    probe_cols: &[usize],
    residual: &Option<Predicate>,
    la: usize,
    morsel: usize,
    stats: &mut OpStats,
) {
    stats.hash_joins += 1;
    stats.probe_rows += probe.len();
    stats.ground_rows += probe.len();
    for range in morsel_ranges(probe.len(), morsel) {
        stats.batches += 1;
        for prow in range {
            let h = hash_key(probe, probe_cols, prow);
            for brow in table.probe(h) {
                let brow = brow as usize;
                if !build.keys_equal(brow, build_cols, probe, prow, probe_cols) {
                    continue;
                }
                let (lb, li, rb, ri) = if build_is_left {
                    (build, brow, probe, prow)
                } else {
                    (probe, prow, build, brow)
                };
                if residual_ok(residual, la, lb, li, rb, ri) {
                    out.push_concat(lb, li, rb, ri);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{Database, DatabaseBuilder, Relation, Tuple};

    /// Two "elements" built by hand over R(a,b) ⋈ S(b,c) shapes: the split
    /// executor's `stable ∪ volatile` must equal plain execution over the
    /// equivalent fully-materialized database, element by element.
    #[test]
    fn split_matches_plain_execution_per_element() {
        let base = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .ints("S", &[10, 100])
            .ints("S", &[20, 200])
            .build();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0, 3])
            .union(RaExpr::values(Relation::from_tuples(
                2,
                vec![Tuple::ints(&[7, 7])],
            )))
            .difference(RaExpr::relation("S"));
        let plan = PlannedQuery::new(q, base.schema()).unwrap();

        let mut setup = ShardSetup::default();
        for rs in base.schema().iter() {
            let rel = base.relation(&rs.name).unwrap();
            setup
                .stable_scans
                .insert(rs.name.clone(), Rc::new(ColumnBatch::from_relation(rel)));
            // R varies per element; S is static.
            setup.static_scans.insert(rs.name.clone(), rs.name == "S");
        }
        setup.stable_delta = Rc::new(ColumnBatch::new(2));
        setup.static_delta = true;
        let mut exec = ShardExec::new(plan.physical(), 1024, setup);

        // Element i adds the row (i, 10·i) to R.
        for i in 3..6i64 {
            let mut volatile_scans: HashMap<String, Rc<ColumnBatch>> = HashMap::new();
            volatile_scans.insert(
                "R".into(),
                Rc::new(ColumnBatch::from_rows(
                    2,
                    [Tuple::ints(&[i, 10 * i])].iter(),
                )),
            );
            let volatile_delta = Rc::new(ColumnBatch::new(2));
            let split = exec.eval_element(&ElementInput {
                volatile_scans: &volatile_scans,
                volatile_delta: &volatile_delta,
            });

            let mut world: Database = base.clone();
            world.insert("R", Tuple::ints(&[i, 10 * i])).unwrap();
            let reference = crate::exec::columnar::execute(plan.physical(), &world);
            let mut got = split.stable.to_relation();
            for t in split.volatile.to_relation().iter() {
                got.insert(t.clone());
            }
            assert_eq!(got, reference, "element {i}");
        }
        assert!(
            exec.stats.tables_reused > 0,
            "later elements must hit the cached tables: {:?}",
            exec.stats
        );
    }
}
