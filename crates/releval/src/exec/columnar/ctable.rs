//! The Imieliński–Lipski c-table algebra on the batched operator core.
//!
//! C-table rows carry [`Condition`]s — inherently symbolic state — so the
//! rows themselves stay row-shaped ([`ConditionalTuple`]); what this
//! executor batches is the *probe traffic*. The `SplitIndex` of the row
//! executor (kept in [`super::super::ctable`] as the differential-fuzz
//! reference) is replaced by a `GroundIndex`: the shared raw-`u64`
//! `RowTable` kernel over the ground-keyed rows plus an explicit symbolic
//! remainder, probed in morsel-sized chunks. Ground/ground key meetings
//! resolve in the hash table without materialising a candidate list or a
//! key vector; only null-involving pairs emit equality atoms, exactly as
//! the row executor does. [`OpStats`] telemetry records batches and the
//! ground/symbolic routing.

use std::collections::BTreeSet;

use ctables::algebra::predicate_condition;
use ctables::condition::Condition;
use ctables::ctable::{ConditionalDatabase, ConditionalTable, ConditionalTuple};
use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relmodel::batch::{morsel_ranges, morsel_rows};
use relmodel::value::Value;
use relmodel::Tuple;

use super::super::OpStats;
use super::{hash_tuple_key, RowTable};

/// Evaluates a physical plan over a conditional database on the batched
/// core — the columnar counterpart of
/// [`super::super::ctable::execute_ctable`], including the propagation of
/// the database's global condition and the final simplification pass.
pub fn execute_ctable(plan: &PhysicalPlan, cdb: &ConditionalDatabase) -> ConditionalTable {
    execute_ctable_counted(plan, cdb).0
}

/// [`execute_ctable`] plus the operator telemetry.
pub fn execute_ctable_counted(
    plan: &PhysicalPlan,
    cdb: &ConditionalDatabase,
) -> (ConditionalTable, OpStats) {
    execute_ctable_counted_with_morsel(plan, cdb, morsel_rows())
}

/// [`execute_ctable_counted`] with an explicit morsel size, for the
/// differential tests.
pub fn execute_ctable_counted_with_morsel(
    plan: &PhysicalPlan,
    cdb: &ConditionalDatabase,
    morsel: usize,
) -> (ConditionalTable, OpStats) {
    let mut exec = CTableExec {
        cdb,
        delta: None,
        morsel: morsel.max(1),
        stats: OpStats::default(),
    };
    let rows = exec.eval(plan.root());
    let table = ConditionalTable::from_rows(plan.arity(), rows);
    (table.and_condition(&cdb.global).simplify(), exec.stats)
}

/// The batched replacement for `SplitIndex` over conditional rows: ground
/// keys chain in a [`RowTable`] under the shared hash kernel, symbolic rows
/// are listed for the per-row fallback. Built once per operator input and
/// probed for every chunk of the opposing side.
struct GroundIndex {
    cols: Vec<usize>,
    table: RowTable,
    symbolic: Vec<u32>,
}

impl GroundIndex {
    fn build(rows: &[ConditionalTuple], cols: &[usize]) -> Self {
        let mut table = RowTable::with_capacity(rows.len());
        let mut symbolic = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            if r.tuple.key_is_complete(cols) {
                table.insert(hash_tuple_key(&r.tuple, cols), i as u32);
            } else {
                symbolic.push(i as u32);
            }
        }
        GroundIndex {
            cols: cols.to_vec(),
            table,
            symbolic,
        }
    }

    /// Row ids whose key might equal `probe[probe_cols]` under some
    /// valuation: hash-verified ground matches plus the symbolic remainder
    /// for a ground probe key; every row for a symbolic one.
    fn candidates(
        &self,
        rows: &[ConditionalTuple],
        probe: &Tuple,
        probe_cols: &[usize],
    ) -> Vec<u32> {
        if probe.key_is_complete(probe_cols) {
            let h = hash_tuple_key(probe, probe_cols);
            let mut out: Vec<u32> = self
                .table
                .probe(h)
                .filter(|&i| {
                    self.cols
                        .iter()
                        .zip(probe_cols)
                        .all(|(&bc, &pc)| rows[i as usize].tuple[bc] == probe[pc])
                })
                .collect();
            out.extend_from_slice(&self.symbolic);
            out
        } else {
            (0..rows.len() as u32).collect()
        }
    }

    fn symbolic_len(&self) -> usize {
        self.symbolic.len()
    }
}

struct CTableExec<'a> {
    cdb: &'a ConditionalDatabase,
    delta: Option<Vec<ConditionalTuple>>,
    morsel: usize,
    stats: OpStats,
}

impl CTableExec<'_> {
    fn eval(&mut self, node: &PhysNode) -> Vec<ConditionalTuple> {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => self
                .cdb
                .table(name)
                .expect("physical plans are lowered from typechecked queries")
                .rows()
                .to_vec(),
            PhysOp::Values(rel) => ConditionalTable::from_relation(rel).rows().to_vec(),
            PhysOp::Delta => self.delta().to_vec(),
            PhysOp::Filter { input, predicate } => {
                let input = self.eval(input);
                let mut out = Vec::with_capacity(input.len());
                for row in input {
                    let cond = predicate_condition(predicate, &row.tuple);
                    let combined = row.condition.and(cond);
                    if combined != Condition::False {
                        out.push(ConditionalTuple::new(row.tuple, combined));
                    }
                }
                out
            }
            PhysOp::Project { input, columns } => self
                .eval(input)
                .into_iter()
                .map(|row| ConditionalTuple::new(row.tuple.project(columns), row.condition))
                .collect(),
            PhysOp::NestedProduct { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
                for l in &left {
                    for r in &right {
                        out.push(ConditionalTuple::new(
                            l.tuple.concat(&r.tuple),
                            l.condition.clone().and(r.condition.clone()),
                        ));
                    }
                }
                out
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let left_cols: Vec<usize> = keys.iter().map(|(lc, _)| *lc).collect();
                let right_cols: Vec<usize> = keys.iter().map(|(_, rc)| *rc).collect();
                let index = GroundIndex::build(&right_rows, &right_cols);
                self.stats.hash_joins += 1;
                self.stats.build_rows += right_rows.len();
                self.stats.probe_rows += left_rows.len();
                let mut out = Vec::new();
                for range in morsel_ranges(left_rows.len(), self.morsel) {
                    self.stats.batches += 1;
                    for l in &left_rows[range] {
                        let candidates = index.candidates(&right_rows, &l.tuple, &left_cols);
                        if l.tuple.key_is_complete(&left_cols) {
                            self.stats.ground_rows += 1;
                            self.stats.fallback_pairs += index.symbolic_len();
                        } else {
                            self.stats.symbolic_rows += 1;
                            self.stats.fallback_pairs += candidates.len();
                        }
                        for ri in candidates {
                            let r = &right_rows[ri as usize];
                            let mut cond = l.condition.clone().and(r.condition.clone());
                            // Key equalities: ground-equal pairs contribute
                            // `true`, null-involving pairs contribute the
                            // atom; ground-unequal pairs (possible only via
                            // the symbolic remainder or a symbolic probe)
                            // collapse the condition to `False`.
                            for (lc, rc) in keys {
                                let (a, b) = (&l.tuple[*lc], &r.tuple[*rc]);
                                if a.is_const() && b.is_const() {
                                    if a != b {
                                        cond = Condition::False;
                                        break;
                                    }
                                } else {
                                    cond = cond.and(Condition::eq(a.clone(), b.clone()));
                                }
                            }
                            if cond == Condition::False {
                                continue;
                            }
                            let row = l.tuple.concat(&r.tuple);
                            if let Some(p) = residual {
                                cond = cond.and(predicate_condition(p, &row));
                                if cond == Condition::False {
                                    continue;
                                }
                            }
                            out.push(ConditionalTuple::new(row, cond));
                        }
                    }
                }
                self.stats.join_rows_out += out.len();
                out
            }
            PhysOp::Union { left, right } => {
                let mut out = self.eval(left);
                out.extend(self.eval(right));
                out
            }
            PhysOp::Difference { left, right } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let cols: Vec<usize> = (0..node.arity()).collect();
                let index = GroundIndex::build(&right_rows, &cols);
                let mut out = Vec::with_capacity(left_rows.len());
                for range in morsel_ranges(left_rows.len(), self.morsel) {
                    self.stats.batches += 1;
                    for l in &left_rows[range] {
                        if l.tuple.key_is_complete(&cols) {
                            self.stats.ground_rows += 1;
                        } else {
                            self.stats.symbolic_rows += 1;
                        }
                        // l is in the answer iff it is present and no right
                        // row is present *and equal to it*; ground-refutable
                        // equalities never enter the condition.
                        let mut cond = l.condition.clone();
                        for ri in index.candidates(&right_rows, &l.tuple, &cols) {
                            let r = &right_rows[ri as usize];
                            let clash = r
                                .condition
                                .clone()
                                .and(Condition::tuples_equal(&l.tuple, &r.tuple));
                            cond = cond.and(clash.negate());
                        }
                        out.push(ConditionalTuple::new(l.tuple.clone(), cond));
                    }
                }
                out
            }
            PhysOp::Intersect { left, right } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let cols: Vec<usize> = (0..node.arity()).collect();
                let index = GroundIndex::build(&right_rows, &cols);
                let mut out = Vec::new();
                for range in morsel_ranges(left_rows.len(), self.morsel) {
                    self.stats.batches += 1;
                    for l in &left_rows[range] {
                        if l.tuple.key_is_complete(&cols) {
                            self.stats.ground_rows += 1;
                        } else {
                            self.stats.symbolic_rows += 1;
                        }
                        let mut membership = Condition::False;
                        for ri in index.candidates(&right_rows, &l.tuple, &cols) {
                            let r = &right_rows[ri as usize];
                            membership = membership.or(r
                                .condition
                                .clone()
                                .and(Condition::tuples_equal(&l.tuple, &r.tuple)));
                        }
                        let cond = l.condition.clone().and(membership);
                        if cond != Condition::False {
                            out.push(ConditionalTuple::new(l.tuple.clone(), cond));
                        }
                    }
                }
                out
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                let prefix_arity = node.arity();
                let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
                let mut out = Vec::new();
                let mut seen_prefixes = BTreeSet::new();
                for row in &dividend {
                    let prefix = row.tuple.project(&prefix_cols);
                    if !seen_prefixes.insert(prefix.clone()) {
                        continue;
                    }
                    // Present iff some dividend row with this prefix is
                    // present, and every present divisor row pairs with it
                    // in the dividend — as in the logical algebra.
                    let mut presence = Condition::False;
                    for u in &dividend {
                        presence = presence.or(u.condition.clone().and(Condition::tuples_equal(
                            &u.tuple.project(&prefix_cols),
                            &prefix,
                        )));
                    }
                    let mut universal = Condition::True;
                    for s in &divisor {
                        let combined = prefix.concat(&s.tuple);
                        let mut exists = Condition::False;
                        for u in &dividend {
                            exists = exists.or(u
                                .condition
                                .clone()
                                .and(Condition::tuples_equal(&u.tuple, &combined)));
                        }
                        universal = universal.and(s.condition.clone().negate().or(exists));
                    }
                    out.push(ConditionalTuple::new(prefix, presence.and(universal)));
                }
                out
            }
        }
    }

    /// The Δ table, computed once per execution: one `(v, v)` row per value
    /// occurring in the database, gated by the condition of a row containing
    /// it — as in the logical algebra.
    fn delta(&mut self) -> &[ConditionalTuple] {
        if self.delta.is_none() {
            let mut out = Vec::new();
            let mut seen: BTreeSet<(Value, Condition)> = BTreeSet::new();
            for (_, table) in self.cdb.iter() {
                for row in table.rows() {
                    for v in row.tuple.values() {
                        let key = (v.clone(), row.condition.clone());
                        if seen.insert(key) {
                            out.push(ConditionalTuple::new(
                                Tuple::new(vec![v.clone(), v.clone()]),
                                row.condition.clone(),
                            ));
                        }
                    }
                }
            }
            self.delta = Some(out);
        }
        self.delta.as_deref().expect("just initialised")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::valuation::ValuationEnumerator;
    use relmodel::{Database, DatabaseBuilder};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10, 100])
            .tuple("S", vec![Value::null(0), Value::int(200)])
            .tuple("U", vec![Value::null(1)])
            .ints("U", &[10])
            .build()
    }

    /// Semantic equality against the row executor: identical instantiations
    /// under every valuation over an adequate domain. (Structural equality
    /// is too strong — candidate order differs between the two indexes, and
    /// condition trees are order-sensitive.)
    fn assert_matches_row_reference(expr: &RaExpr, morsel: usize) {
        let d = db();
        let cdb = ConditionalDatabase::from_database(&d);
        let plan = PlannedQuery::new(expr.clone(), d.schema()).unwrap();
        let (batched, _) = execute_ctable_counted_with_morsel(plan.physical(), &cdb, morsel);
        let reference = super::super::super::ctable::execute_ctable(plan.physical(), &cdb);
        let mut nulls = cdb.null_ids();
        nulls.extend(batched.null_ids());
        nulls.extend(reference.null_ids());
        let domain = cdb.adequate_domain(&batched.constants(), 2);
        let mut checked = 0usize;
        for v in ValuationEnumerator::new(nulls, domain) {
            assert_eq!(
                batched.instantiate(&v),
                reference.instantiate(&v),
                "instantiations diverge for {expr} (morsel {morsel}) at {v:?}"
            );
            checked += 1;
        }
        assert!(checked > 0, "no valuations enumerated for {expr}");
    }

    #[test]
    fn every_operator_matches_the_row_executor_across_morsel_sizes() {
        let r = RaExpr::relation("R");
        let join = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let cases = vec![
            r.clone(),
            r.clone().project(vec![1]),
            r.clone()
                .select(Predicate::neq(Operand::col(1), Operand::int(10))),
            join.clone(),
            join.clone().project(vec![0, 3]),
            r.clone().project(vec![1]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta.project(vec![0]),
            join.project(vec![0]).difference(r.clone().project(vec![0])),
        ];
        for q in cases {
            for morsel in [1, 3, 1024] {
                assert_matches_row_reference(&q, morsel);
            }
        }
    }

    #[test]
    fn hash_join_routes_ground_and_symbolic_probes() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let d = db();
        let cdb = ConditionalDatabase::from_database(&d);
        let plan = PlannedQuery::new(q, d.schema()).unwrap();
        let (out, stats) = execute_ctable_counted(plan.physical(), &cdb);
        assert!(stats.hash_joins >= 1);
        assert_eq!(stats.ground_rows, 1, "R(1,10) probes the ground run");
        assert_eq!(stats.symbolic_rows, 1, "R(2,⊥0) takes the fallback");
        assert!(stats.fallback_pairs > 0);
        // R(2,⊥0) joins S(10,100) under the condition ⊥0 = 10.
        assert!(out.rows().iter().any(|r| {
            r.tuple.values()[0] == Value::int(2)
                && r.condition == Condition::eq(Value::null(0), Value::int(10))
        }));
    }
}
