//! The Imieliński–Lipski c-table algebra on the physical operator core.
//!
//! Same semantics as the logical tree-walk in [`ctables::algebra`] — every
//! row carries a [`Condition`] describing the valuations under which it is
//! present — but run over the rewritten [`PhysicalPlan`], so equi-joins hash
//! instead of looping:
//!
//! * pairs whose key columns are **ground on both sides** meet (or don't)
//!   in the hash table: equal keys conjoin their row conditions; unequal
//!   keys never materialise the unsatisfiable row the logical algebra would
//!   have carried to its final `simplify()`;
//! * pairs involving a **null key** fall back to the `SplitIndex`
//!   symbolic remainder and emit the equality atoms (`⊥ᵢ = c`, `⊥ᵢ = ⊥ⱼ`)
//!   as conditions, exactly as the logical algebra does.
//!
//! Difference and intersection quantify over the opposing rows; the split
//! index prunes the terms whose tuple equality is ground-refutable (their
//! conditions simplify to `False` anyway), keeping conditions small without
//! changing their meaning. The executor's output — like
//! [`ctables::algebra::eval_ctable_unchecked`] — has the database's global
//! condition conjoined into every row and is simplified once at the end.

use std::collections::BTreeSet;

use ctables::algebra::predicate_condition;
use ctables::condition::Condition;
use ctables::ctable::{ConditionalDatabase, ConditionalTable, ConditionalTuple};
use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relmodel::value::Value;
use relmodel::Tuple;

use super::{OpStats, SplitIndex};

/// Evaluates a physical plan over a conditional database, returning a
/// conditional table with `[[A]]_cwa = Q([[D]]_cwa)` — the physical
/// counterpart of [`ctables::algebra::eval_ctable_unchecked`], including the
/// propagation of the database's global condition and the final
/// simplification pass.
pub fn execute_ctable(plan: &PhysicalPlan, cdb: &ConditionalDatabase) -> ConditionalTable {
    execute_ctable_counted(plan, cdb).0
}

/// [`execute_ctable`] plus the operator telemetry.
pub fn execute_ctable_counted(
    plan: &PhysicalPlan,
    cdb: &ConditionalDatabase,
) -> (ConditionalTable, OpStats) {
    let mut exec = CTableExec {
        cdb,
        delta: None,
        stats: OpStats::default(),
    };
    let rows = exec.eval(plan.root());
    let table = ConditionalTable::from_rows(plan.arity(), rows);
    (table.and_condition(&cdb.global).simplify(), exec.stats)
}

struct CTableExec<'a> {
    cdb: &'a ConditionalDatabase,
    delta: Option<Vec<ConditionalTuple>>,
    stats: OpStats,
}

impl CTableExec<'_> {
    fn eval(&mut self, node: &PhysNode) -> Vec<ConditionalTuple> {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => self
                .cdb
                .table(name)
                .expect("physical plans are lowered from typechecked queries")
                .rows()
                .to_vec(),
            PhysOp::Values(rel) => ConditionalTable::from_relation(rel).rows().to_vec(),
            PhysOp::Delta => self.delta().to_vec(),
            PhysOp::Filter { input, predicate } => {
                let input = self.eval(input);
                let mut out = Vec::with_capacity(input.len());
                for row in input {
                    let cond = predicate_condition(predicate, &row.tuple);
                    let combined = row.condition.and(cond);
                    if combined != Condition::False {
                        out.push(ConditionalTuple::new(row.tuple, combined));
                    }
                }
                out
            }
            PhysOp::Project { input, columns } => self
                .eval(input)
                .into_iter()
                .map(|row| ConditionalTuple::new(row.tuple.project(columns), row.condition))
                .collect(),
            PhysOp::NestedProduct { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
                for l in &left {
                    for r in &right {
                        out.push(ConditionalTuple::new(
                            l.tuple.concat(&r.tuple),
                            l.condition.clone().and(r.condition.clone()),
                        ));
                    }
                }
                out
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let left_cols: Vec<usize> = keys.iter().map(|(lc, _)| *lc).collect();
                let right_cols: Vec<usize> = keys.iter().map(|(_, rc)| *rc).collect();
                let index = SplitIndex::build(right_rows.iter(), &right_cols, |r| &r.tuple);
                self.stats.hash_joins += 1;
                self.stats.build_rows += right_rows.len();
                self.stats.probe_rows += left_rows.len();
                let mut out = Vec::new();
                for l in &left_rows {
                    let candidates = index.candidates(&l.tuple, &left_cols);
                    if l.tuple.key_is_complete(&left_cols) {
                        self.stats.fallback_pairs += index.symbolic_len();
                    } else {
                        self.stats.fallback_pairs += candidates.len();
                    }
                    for r in candidates {
                        let mut cond = l.condition.clone().and(r.condition.clone());
                        // Key equalities: ground-equal pairs contribute
                        // `true`, null-involving pairs contribute the atom.
                        // (Ground-unequal pairs can only arrive through the
                        // symbolic remainder; their refuted atom makes the
                        // whole condition `False` and the row is dropped,
                        // matching what the logical algebra's final
                        // simplification would have done.)
                        for (lc, rc) in keys {
                            let (a, b) = (&l.tuple[*lc], &r.tuple[*rc]);
                            if a.is_const() && b.is_const() {
                                if a != b {
                                    cond = Condition::False;
                                    break;
                                }
                            } else {
                                cond = cond.and(Condition::eq(a.clone(), b.clone()));
                            }
                        }
                        if cond == Condition::False {
                            continue;
                        }
                        let row = l.tuple.concat(&r.tuple);
                        if let Some(p) = residual {
                            cond = cond.and(predicate_condition(p, &row));
                            if cond == Condition::False {
                                continue;
                            }
                        }
                        out.push(ConditionalTuple::new(row, cond));
                    }
                }
                self.stats.join_rows_out += out.len();
                out
            }
            PhysOp::Union { left, right } => {
                let mut out = self.eval(left);
                out.extend(self.eval(right));
                out
            }
            PhysOp::Difference { left, right } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let cols: Vec<usize> = (0..node.arity()).collect();
                let index = SplitIndex::build(right_rows.iter(), &cols, |r| &r.tuple);
                let mut out = Vec::with_capacity(left_rows.len());
                for l in left_rows {
                    // l is in the answer iff it is present and no right row
                    // is present *and equal to it*; ground-refutable
                    // equalities are pruned by the index.
                    let mut cond = l.condition;
                    for r in index.candidates(&l.tuple, &cols) {
                        let clash = r
                            .condition
                            .clone()
                            .and(Condition::tuples_equal(&l.tuple, &r.tuple));
                        cond = cond.and(clash.negate());
                    }
                    out.push(ConditionalTuple::new(l.tuple, cond));
                }
                out
            }
            PhysOp::Intersect { left, right } => {
                let left_rows = self.eval(left);
                let right_rows = self.eval(right);
                let cols: Vec<usize> = (0..node.arity()).collect();
                let index = SplitIndex::build(right_rows.iter(), &cols, |r| &r.tuple);
                let mut out = Vec::new();
                for l in left_rows {
                    let mut membership = Condition::False;
                    for r in index.candidates(&l.tuple, &cols) {
                        membership = membership.or(r
                            .condition
                            .clone()
                            .and(Condition::tuples_equal(&l.tuple, &r.tuple)));
                    }
                    let cond = l.condition.and(membership);
                    if cond != Condition::False {
                        out.push(ConditionalTuple::new(l.tuple, cond));
                    }
                }
                out
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                let prefix_arity = node.arity();
                let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
                let mut out = Vec::new();
                let mut seen_prefixes = BTreeSet::new();
                for row in &dividend {
                    let prefix = row.tuple.project(&prefix_cols);
                    if !seen_prefixes.insert(prefix.clone()) {
                        continue;
                    }
                    // Present iff some dividend row with this prefix is
                    // present, and every present divisor row pairs with it
                    // in the dividend — as in the logical algebra.
                    let mut presence = Condition::False;
                    for u in &dividend {
                        presence = presence.or(u.condition.clone().and(Condition::tuples_equal(
                            &u.tuple.project(&prefix_cols),
                            &prefix,
                        )));
                    }
                    let mut universal = Condition::True;
                    for s in &divisor {
                        let combined = prefix.concat(&s.tuple);
                        let mut exists = Condition::False;
                        for u in &dividend {
                            exists = exists.or(u
                                .condition
                                .clone()
                                .and(Condition::tuples_equal(&u.tuple, &combined)));
                        }
                        universal = universal.and(s.condition.clone().negate().or(exists));
                    }
                    out.push(ConditionalTuple::new(prefix, presence.and(universal)));
                }
                out
            }
        }
    }

    /// The Δ table, computed once per execution: one `(v, v)` row per value
    /// occurring in the database, gated by the condition of a row containing
    /// it — as in the logical algebra.
    fn delta(&mut self) -> &[ConditionalTuple] {
        if self.delta.is_none() {
            let mut out = Vec::new();
            let mut seen: BTreeSet<(Value, Condition)> = BTreeSet::new();
            for (_, table) in self.cdb.iter() {
                for row in table.rows() {
                    for v in row.tuple.values() {
                        let key = (v.clone(), row.condition.clone());
                        if seen.insert(key) {
                            out.push(ConditionalTuple::new(
                                Tuple::new(vec![v.clone(), v.clone()]),
                                row.condition.clone(),
                            ));
                        }
                    }
                }
            }
            self.delta = Some(out);
        }
        self.delta.as_deref().expect("just initialised")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctables::algebra::eval_ctable_unchecked;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::valuation::ValuationEnumerator;
    use relmodel::value::Constant;
    use relmodel::{Database, DatabaseBuilder, Value};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10, 100])
            .tuple("S", vec![Value::null(0), Value::int(200)])
            .tuple("U", vec![Value::null(1)])
            .ints("U", &[10])
            .build()
    }

    /// Semantic equality of conditional tables: identical instantiations
    /// under every valuation over an adequate domain. (Structural equality
    /// is too strong — the physical executor prunes rows and terms whose
    /// conditions the logical algebra only discharges in its final
    /// `simplify()`.)
    fn assert_semantically_equal(
        a: &ConditionalTable,
        b: &ConditionalTable,
        cdb: &ConditionalDatabase,
        context: &str,
    ) {
        let mut nulls = cdb.null_ids();
        nulls.extend(a.null_ids());
        nulls.extend(b.null_ids());
        let domain = cdb.adequate_domain(&a.constants(), 2);
        let mut checked = 0usize;
        for v in ValuationEnumerator::new(nulls, domain) {
            assert_eq!(
                a.instantiate(&v),
                b.instantiate(&v),
                "instantiations diverge for {context} at {v:?}"
            );
            checked += 1;
        }
        assert!(checked > 0, "no valuations enumerated for {context}");
    }

    fn assert_matches_logical(expr: &RaExpr) {
        let d = db();
        let cdb = ConditionalDatabase::from_database(&d);
        let plan = PlannedQuery::new(expr.clone(), d.schema()).unwrap();
        let physical = execute_ctable(plan.physical(), &cdb);
        let logical = eval_ctable_unchecked(expr, &cdb);
        assert_semantically_equal(&physical, &logical, &cdb, &expr.to_string());
    }

    #[test]
    fn hash_join_emits_conditions_for_null_keys() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let d = db();
        let cdb = ConditionalDatabase::from_database(&d);
        let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
        let (out, stats) = execute_ctable_counted(plan.physical(), &cdb);
        assert!(stats.hash_joins >= 1);
        assert!(stats.fallback_pairs > 0, "⊥0 keys go through the fallback");
        // R(2,⊥0) joins S(10,100) under the condition ⊥0 = 10.
        assert!(out.rows().iter().any(|r| {
            r.tuple.values()[0] == Value::int(2)
                && r.condition == Condition::eq(Value::null(0), Value::int(10))
        }));
        assert_matches_logical(&q);
    }

    #[test]
    fn every_operator_matches_the_logical_algebra() {
        let r = RaExpr::relation("R");
        let join = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let cases = vec![
            r.clone(),
            r.clone().project(vec![1]),
            r.clone()
                .select(Predicate::neq(Operand::col(1), Operand::int(10))),
            join.clone(),
            join.clone().project(vec![0, 3]),
            r.clone().project(vec![1]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta.project(vec![0]),
            join.project(vec![0]).difference(r.clone().project(vec![0])),
        ];
        for q in cases {
            assert_matches_logical(&q);
        }
    }

    #[test]
    fn global_condition_is_propagated_like_the_logical_entry_point() {
        let schema = relmodel::Schema::builder().relation("R", &["a"]).build();
        let rel = relmodel::Relation::from_tuples(1, vec![Tuple::ints(&[1])]);
        let mut cdb = ConditionalDatabase::new(schema.clone());
        cdb.set_table("R", ConditionalTable::from_relation(&rel));
        let cdb = cdb.with_global(Condition::eq(Value::null(0), Value::int(0)));
        let plan = PlannedQuery::new(RaExpr::relation("R"), &schema).unwrap();
        let answer = execute_ctable(plan.physical(), &cdb);
        let violating =
            relmodel::Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(7))]);
        assert!(answer.instantiate(&violating).is_empty());
        let admissible =
            relmodel::Valuation::from_pairs(vec![(relmodel::value::NullId(0), Constant::Int(0))]);
        assert_eq!(answer.instantiate(&admissible).len(), 1);
    }
}
