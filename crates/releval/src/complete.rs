//! Evaluation over **complete** databases — the textbook evaluator.

use relalgebra::ast::RaExpr;
use relmodel::{Database, Relation};

use crate::engine;
use crate::error::EvalError;

/// Evaluates a relational algebra expression over a complete database.
///
/// Returns [`EvalError::IncompleteInput`] if the database contains nulls: this
/// evaluator models classical query evaluation, which is only *defined* on
/// complete databases. Use [`crate::naive::eval_naive`] to run the same
/// algorithm on incomplete inputs.
pub fn eval_complete(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    let nulls = db.null_ids().len();
    if nulls > 0 {
        return Err(EvalError::IncompleteInput { nulls });
    }
    engine::eval(expr, db)
}

/// Evaluates a Boolean query (arity-0 result) over a complete database,
/// returning whether the answer is nonempty.
pub fn eval_boolean_complete(expr: &RaExpr, db: &Database) -> Result<bool, EvalError> {
    Ok(!eval_complete(expr, db)?.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Tuple, Value};

    #[test]
    fn rejects_incomplete_input() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .tuple("R", vec![Value::null(0)])
            .build();
        assert!(matches!(
            eval_complete(&RaExpr::relation("R"), &db),
            Err(EvalError::IncompleteInput { nulls: 1 })
        ));
    }

    #[test]
    fn evaluates_complete_input() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .ints("R", &[2])
            .build();
        let out = eval_complete(&RaExpr::relation("R"), &db).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn boolean_evaluation() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .build();
        // ∃x R(x) ∧ x = 1, projected to arity 0.
        let q = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![]);
        assert!(eval_boolean_complete(&q, &db).unwrap());
        let q2 = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(0), Operand::int(9)))
            .project(vec![]);
        assert!(!eval_boolean_complete(&q2, &db).unwrap());
    }
}
