//! The physical-plan executor: one hash-join operator core under every
//! evaluator.
//!
//! [`relalgebra::physical`] lowers a query to a [`PhysicalPlan`] once; this
//! module executes that plan under the three row models the strategies need:
//!
//! * **plain tuples** ([`execute`]) — syntactic value equality; this is what
//!   naïve evaluation *is*, and (on complete inputs) textbook evaluation. The
//!   worlds strategy runs this executor once per possible world against the
//!   single shared plan.
//! * **the certain⁺/possible? pair** ([`approx::execute_approx`]) — the
//!   sound approximation's under/over pair, with marked-null three-valued
//!   filters and unification-aware set operators.
//! * **condition-carrying c-table rows** ([`ctable::execute_ctable`]) — the
//!   Imieliński–Lipski algebra re-expressed on the operator core; rows carry
//!   [`ctables::condition::Condition`]s instead of being filtered outright.
//!
//! All three share the same kernel shape: **hash what is ground, loop what
//! is symbolic**. Under syntactic equality every row is "ground" (a marked
//! null is just a value), so plain execution is pure build/probe hashing —
//! hash equi-join, hash union/difference/intersection, hash-lookup division.
//! Under valuation-aware semantics a key containing a null can match rows a
//! hash lookup would miss, so the kernel's `SplitIndex` partitions rows
//! into hashable ground keys and a (typically small) symbolic remainder that
//! the model-specific operators handle pair by pair.
//!
//! Executors compute the active-domain diagonal `Δ` **once per execution**
//! and serve every `Delta` node from that cache — the worlds strategy used
//! to recompute (and clone) the domain on every `Δ` evaluation in every
//! world.
//!
//! [`OpStats`] counts what actually happened (operators run, hash joins,
//! build/probe rows, symbolic fallback pairs); the engine surfaces it in
//! [`CertainReport`](../../engine) alongside the plan's `EXPLAIN` text.

pub mod approx;
pub mod columnar;
pub mod ctable;

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};

use relalgebra::physical::{PhysNode, PhysOp, PhysicalPlan};
use relalgebra::predicate::Predicate;
use relmodel::value::Value;
use relmodel::{Database, Relation, Tuple};

/// Execution telemetry: what the physical operators actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Physical operator nodes evaluated (across all worlds, for the worlds
    /// strategy).
    pub operators: usize,
    /// Hash joins executed.
    pub hash_joins: usize,
    /// Rows hashed into join build tables.
    pub build_rows: usize,
    /// Rows probed against join build tables.
    pub probe_rows: usize,
    /// Rows emitted by joins (before any parent operator).
    pub join_rows_out: usize,
    /// Row pairs handled by the symbolic (null-key / condition-row) fallback
    /// outside the hash path. Zero for plain execution, where every key is
    /// syntactically ground.
    pub fallback_pairs: usize,
    /// Morsel chunks processed by the columnar executors' operator loops.
    /// Zero for the row-at-a-time reference path.
    pub batches: usize,
    /// Probe-side rows routed through the vectorized ground run of a
    /// run-splitting columnar operator (join, ∪/−/∩ membership, ÷). Under
    /// syntactic equality every row is ground, so for the plain columnar
    /// executor this counts all probed rows.
    pub ground_rows: usize,
    /// Probe-side rows routed to the per-row symbolic fallback of a
    /// run-splitting columnar operator. `ground_rows + symbolic_rows` is the
    /// total probed-row traffic of the batched core.
    pub symbolic_rows: usize,
    /// Hash tables (join build sides, membership / dedup tables) actually
    /// constructed. The batched enumeration folds build tables over the
    /// world-invariant runs once per shard, so across an enumeration this
    /// stays near the per-shard table count.
    pub tables_built: usize,
    /// Cache hits on those tables: evaluations served by a table built for
    /// an earlier world/repair of the same shard instead of rebuilding.
    /// `tables_reused / (tables_built + tables_reused)` is the reuse rate
    /// the bench gate tracks.
    pub tables_reused: usize,
}

/// Number of counters in [`OpStats`] (the length of
/// [`OpStats::to_array`]).
pub const OP_STATS_FIELDS: usize = 11;

impl OpStats {
    /// The counters as a fixed array, in declaration order. Built by
    /// exhaustive destructuring — adding a counter without updating this
    /// (and thereby [`OpStats::merge`]) is a compile error, so aggregation
    /// across worlds shards can never silently drop a field.
    pub fn to_array(&self) -> [usize; OP_STATS_FIELDS] {
        let OpStats {
            operators,
            hash_joins,
            build_rows,
            probe_rows,
            join_rows_out,
            fallback_pairs,
            batches,
            ground_rows,
            symbolic_rows,
            tables_built,
            tables_reused,
        } = *self;
        [
            operators,
            hash_joins,
            build_rows,
            probe_rows,
            join_rows_out,
            fallback_pairs,
            batches,
            ground_rows,
            symbolic_rows,
            tables_built,
            tables_reused,
        ]
    }

    /// Inverse of [`OpStats::to_array`].
    pub fn from_array(a: [usize; OP_STATS_FIELDS]) -> OpStats {
        let [operators, hash_joins, build_rows, probe_rows, join_rows_out, fallback_pairs, batches, ground_rows, symbolic_rows, tables_built, tables_reused] =
            a;
        OpStats {
            operators,
            hash_joins,
            build_rows,
            probe_rows,
            join_rows_out,
            fallback_pairs,
            batches,
            ground_rows,
            symbolic_rows,
            tables_built,
            tables_reused,
        }
    }

    /// Accumulates another execution's counters into this one (used by the
    /// worlds strategy to aggregate across per-world executions and worker
    /// shards). Sums every counter, by construction: the conversion through
    /// [`OpStats::to_array`] destructures exhaustively.
    pub fn merge(&mut self, other: &OpStats) {
        let mut sum = self.to_array();
        for (s, o) in sum.iter_mut().zip(other.to_array()) {
            *s += o;
        }
        *self = OpStats::from_array(sum);
    }

    /// One-line telemetry rendering, used in EXPLAIN footers and the
    /// examples.
    pub fn summary(&self) -> String {
        format!(
            "operators {} · hash joins {} · build rows {} · probe rows {} · join rows out {} · fallback pairs {}\nbatches {} · ground rows {} · symbolic rows {} · tables built {} · tables reused {}",
            self.operators,
            self.hash_joins,
            self.build_rows,
            self.probe_rows,
            self.join_rows_out,
            self.fallback_pairs,
            self.batches,
            self.ground_rows,
            self.symbolic_rows,
            self.tables_built,
            self.tables_reused,
        )
    }
}

/// The plan's EXPLAIN text with the execution telemetry attached as a
/// footer — what `examples/explain_tour.rs` prints after running a plan.
pub fn explain_executed(plan: &PhysicalPlan, stats: &OpStats) -> String {
    plan.explain_with_footer(&stats.summary())
}

/// What one physical operator did during a profiled execution — the
/// per-node record behind `EXPLAIN ANALYZE`.
///
/// All counters are **inclusive** of the node's subtree (Postgres-style):
/// a parent's `nanos` covers its children's, so sibling subtrees can be
/// compared directly and the root's time is the whole execution. Wall-clock
/// lives here and deliberately **not** in [`OpStats`], which the
/// differential tests compare with `Eq` across executors and must stay
/// deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeProfile {
    /// The plan-unique preorder id of the node
    /// ([`relalgebra::physical::PhysNode::id`]).
    pub id: u32,
    /// Rows the node emitted (post-dedup, pre-parent).
    pub rows: usize,
    /// Morsel chunks processed in the subtree rooted here.
    pub batches: usize,
    /// Hash tables constructed in the subtree rooted here.
    pub tables_built: usize,
    /// Hash-table cache hits in the subtree rooted here.
    pub tables_reused: usize,
    /// Inclusive wall-clock for the subtree, in nanoseconds.
    pub nanos: u64,
}

/// Executes a physical plan over a database under **syntactic** value
/// equality (nulls are ordinary values) — the evaluation the naïve,
/// complete, and per-world strategies share.
pub fn execute(plan: &PhysicalPlan, db: &Database) -> Relation {
    execute_counted(plan, db).0
}

/// [`execute`] plus the operator telemetry.
pub fn execute_counted<'a>(plan: &'a PhysicalPlan, db: &'a Database) -> (Relation, OpStats) {
    let mut exec = PlainExec {
        db,
        delta: None,
        stats: OpStats::default(),
    };
    let rows = exec.eval(plan.root());
    (
        Relation::from_tuples(plan.arity(), rows.into_iter().map(Cow::into_owned)),
        exec.stats,
    )
}

/// [`execute`] with a caller-provided stats accumulator — the worlds
/// strategy threads one accumulator through its whole per-world loop.
pub fn execute_into(plan: &PhysicalPlan, db: &Database, stats: &mut OpStats) -> Relation {
    let (answers, run) = execute_counted(plan, db);
    stats.merge(&run);
    answers
}

/// Rows flowing between plain operators: leaves are **borrowed** from the
/// database (or the plan's literal relations), so a scan copies nothing and
/// operators only pay for the rows they actually build — the same zero-copy
/// discipline as the logical interpreter's `Cow<Relation>`, per row.
type Rows<'a> = Vec<Cow<'a, Tuple>>;

struct PlainExec<'a> {
    db: &'a Database,
    /// The Δ diagonal, computed on first use and reused for every `Delta`
    /// node of this execution.
    delta: Option<Vec<Tuple>>,
    stats: OpStats,
}

impl<'a> PlainExec<'a> {
    /// Evaluates a node to a duplicate-free row vector.
    fn eval(&mut self, node: &'a PhysNode) -> Rows<'a> {
        self.stats.operators += 1;
        match node.op() {
            PhysOp::Scan(name) => self
                .db
                .relation(name)
                .expect("physical plans are lowered from typechecked queries")
                .iter()
                .map(Cow::Borrowed)
                .collect(),
            PhysOp::Values(rel) => rel.iter().map(Cow::Borrowed).collect(),
            PhysOp::Delta => {
                self.ensure_delta();
                self.delta
                    .as_deref()
                    .expect("just initialised")
                    .iter()
                    .map(|t| Cow::Owned(t.clone()))
                    .collect()
            }
            PhysOp::Filter { input, predicate } => {
                let mut rows = self.eval(input);
                rows.retain(|t| predicate.eval_naive(t));
                rows
            }
            PhysOp::Project { input, columns } => {
                let rows = self.eval(input);
                let mut seen: HashSet<Tuple> = HashSet::with_capacity(rows.len());
                let mut out = Vec::with_capacity(rows.len());
                for t in rows {
                    let projected = t.project(columns);
                    if seen.insert(projected.clone()) {
                        out.push(Cow::Owned(projected));
                    }
                }
                out
            }
            PhysOp::NestedProduct { left, right } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
                for l in &left {
                    for r in &right {
                        out.push(Cow::Owned(l.concat(r)));
                    }
                }
                out
            }
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual,
            } => {
                let left = self.eval(left);
                let right = self.eval(right);
                let left_refs: Vec<&Tuple> = left.iter().map(|c| c.as_ref()).collect();
                let right_refs: Vec<&Tuple> = right.iter().map(|c| c.as_ref()).collect();
                syntactic_hash_join(
                    &left_refs,
                    &right_refs,
                    keys,
                    |row| residual.as_ref().is_none_or(|p| p.eval_naive(row)),
                    &mut self.stats,
                )
                .into_iter()
                .map(Cow::Owned)
                .collect()
            }
            PhysOp::Union { left, right } => {
                let mut rows = self.eval(left);
                let seen: HashSet<&Tuple> = rows.iter().map(|c| c.as_ref()).collect();
                let right = self.eval(right);
                let mut fresh = Vec::new();
                for t in right {
                    if !seen.contains(t.as_ref()) {
                        fresh.push(t);
                    }
                }
                // Two-phase extend keeps `seen`'s borrows of `rows` legal.
                drop(seen);
                rows.extend(fresh);
                rows
            }
            PhysOp::Difference { left, right } => {
                let mut rows = self.eval(left);
                // `Cow`'s Hash/Eq delegate to the underlying tuple, so
                // borrowed and owned rows compare and hash identically.
                let exclude: HashSet<Cow<'a, Tuple>> = self.eval(right).into_iter().collect();
                rows.retain(|t| !exclude.contains(t));
                rows
            }
            PhysOp::Intersect { left, right } => {
                let mut rows = self.eval(left);
                let keep: HashSet<Cow<'a, Tuple>> = self.eval(right).into_iter().collect();
                rows.retain(|t| keep.contains(t));
                rows
            }
            PhysOp::Divide { left, right } => {
                let dividend = self.eval(left);
                let divisor = self.eval(right);
                hash_divide(&dividend, &divisor, node.arity())
                    .into_iter()
                    .map(Cow::Owned)
                    .collect()
            }
        }
    }

    fn ensure_delta(&mut self) {
        if self.delta.is_none() {
            self.delta = Some(delta_diagonal(self.db));
        }
    }
}

/// The `Δ` diagonal of `db`'s active domain — one `(v, v)` tuple per value.
/// Shared by the plain and pair executors, which both compute it once per
/// execution and serve every `Delta` node from the cache.
pub(crate) fn delta_diagonal(db: &Database) -> Vec<Tuple> {
    db.active_domain()
        .into_iter()
        .map(|v| Tuple::new(vec![v.clone(), v]))
        .collect()
}

/// The shared syntactic hash equi-join: builds a hash table on the smaller
/// side's key columns, probes with the other, and keeps concatenated rows
/// passing `keep` (the residual predicate under the caller's semantics).
/// Under syntactic equality every value — marked nulls included — is an
/// exact hash key, so this one kernel serves naïve evaluation, per-world
/// evaluation, and the certain side of the approximation pair.
pub(crate) fn syntactic_hash_join(
    left: &[&Tuple],
    right: &[&Tuple],
    keys: &[(usize, usize)],
    mut keep: impl FnMut(&Tuple) -> bool,
    stats: &mut OpStats,
) -> Vec<Tuple> {
    let left_cols: Vec<usize> = keys.iter().map(|(l, _)| *l).collect();
    let right_cols: Vec<usize> = keys.iter().map(|(_, r)| *r).collect();
    let build_left = left.len() <= right.len();
    let (build, probe, build_cols, probe_cols) = if build_left {
        (left, right, &left_cols, &right_cols)
    } else {
        (right, left, &right_cols, &left_cols)
    };
    stats.hash_joins += 1;
    stats.build_rows += build.len();
    stats.probe_rows += probe.len();
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build.len());
    for t in build {
        table.entry(t.key(build_cols)).or_default().push(t);
    }
    let mut out = Vec::new();
    for p in probe {
        if let Some(bucket) = table.get(&p.key(probe_cols)) {
            for b in bucket {
                let row = if build_left { b.concat(p) } else { p.concat(b) };
                if keep(&row) {
                    out.push(row);
                }
            }
        }
    }
    stats.join_rows_out += out.len();
    out
}

/// Hash-lookup relational division: group dividend suffixes by prefix, then
/// check each prefix's suffix set against the divisor with O(1) lookups —
/// no `Relation::contains` tree walks in the inner loop.
fn hash_divide(
    dividend: &[Cow<'_, Tuple>],
    divisor: &[Cow<'_, Tuple>],
    prefix_arity: usize,
) -> Vec<Tuple> {
    let dividend_arity = prefix_arity + divisor.first().map_or(0, |t| t.arity());
    let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
    let suffix_cols: Vec<usize> = (prefix_arity..dividend_arity).collect();
    let mut groups: HashMap<Vec<Value>, HashSet<Vec<Value>>> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for t in dividend {
        let prefix = t.key(&prefix_cols);
        let entry = groups.entry(prefix.clone()).or_default();
        if entry.is_empty() {
            order.push(prefix);
        }
        entry.insert(t.key(&suffix_cols));
    }
    let divisor_keys: Vec<Vec<Value>> = divisor.iter().map(|s| s.key(&suffix_keys_of(s))).collect();
    let mut out = Vec::new();
    for prefix in order {
        let suffixes = &groups[&prefix];
        if divisor_keys.iter().all(|s| suffixes.contains(s)) {
            out.push(Tuple::new(prefix));
        }
    }
    out
}

fn suffix_keys_of(s: &Tuple) -> Vec<usize> {
    (0..s.arity()).collect()
}

/// Rows partitioned for valuation-aware probing: rows whose key columns are
/// all constants are hashed exactly; rows with nulls in the key can match
/// values a hash lookup would miss, so they sit in a symbolic remainder the
/// caller pairs up explicitly. `R` is the row type — a plain [`Tuple`] for
/// the approximation pair, a condition-carrying row for c-tables.
pub(crate) struct SplitIndex<'a, R> {
    ground: HashMap<Vec<Value>, Vec<&'a R>>,
    symbolic: Vec<&'a R>,
    all: Vec<&'a R>,
}

impl<'a, R> SplitIndex<'a, R> {
    /// Indexes `rows` by the values of `key_cols` of `tuple_of(row)`.
    pub fn build(
        rows: impl IntoIterator<Item = &'a R>,
        key_cols: &[usize],
        tuple_of: impl Fn(&R) -> &Tuple,
    ) -> Self {
        let mut ground: HashMap<Vec<Value>, Vec<&'a R>> = HashMap::new();
        let mut symbolic = Vec::new();
        let mut all = Vec::new();
        for row in rows {
            let t = tuple_of(row);
            if t.key_is_complete(key_cols) {
                ground.entry(t.key(key_cols)).or_default().push(row);
            } else {
                symbolic.push(row);
            }
            all.push(row);
        }
        SplitIndex {
            ground,
            symbolic,
            all,
        }
    }

    /// Rows that could match a probe tuple: for a ground probe key, the
    /// exact hash bucket plus every symbolic row; for a null-bearing probe
    /// key, every row. The result is a superset of the semantically matching
    /// rows — callers re-check each candidate under their own semantics.
    pub fn candidates(&self, probe: &Tuple, key_cols: &[usize]) -> Vec<&'a R> {
        if probe.key_is_complete(key_cols) {
            let mut out: Vec<&'a R> = self
                .ground
                .get(&probe.key(key_cols))
                .map(|bucket| bucket.to_vec())
                .unwrap_or_default();
            out.extend(self.symbolic.iter().copied());
            out
        } else {
            self.all.to_vec()
        }
    }

    /// How many rows sit outside the hash path.
    pub fn symbolic_len(&self) -> usize {
        self.symbolic.len()
    }
}

/// The full join predicate of a hash join — its equi-key atoms (in
/// concatenated-row coordinates) conjoined with the residual. The
/// valuation-aware executors re-check candidate pairs against this, so the
/// hash path can never change semantics, only skip non-matches.
pub(crate) fn join_predicate(
    keys: &[(usize, usize)],
    left_arity: usize,
    residual: &Option<Predicate>,
) -> Predicate {
    use relalgebra::predicate::Operand;
    let atoms = keys
        .iter()
        .map(|(l, r)| Predicate::eq(Operand::col(*l), Operand::col(left_arity + *r)));
    let keyed = Predicate::conjoin(atoms);
    match residual {
        None => keyed,
        Some(p) => keyed.and(p.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::eval_unchecked;
    use relalgebra::ast::RaExpr;
    use relalgebra::plan::PlannedQuery;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Value};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(3), Value::null(0)])
            .ints("S", &[10, 100])
            .ints("S", &[20, 200])
            .tuple("S", vec![Value::null(0), Value::int(300)])
            .ints("U", &[10])
            .ints("U", &[20])
            .build()
    }

    fn run(expr: &RaExpr) -> (Relation, OpStats) {
        let d = db();
        let plan = PlannedQuery::new(expr.clone(), d.schema()).unwrap();
        execute_counted(plan.physical(), &d)
    }

    /// Physical execution must agree with the logical tree-walking
    /// interpreter on every operator (syntactic semantics on both sides).
    fn assert_matches_logical(expr: &RaExpr) {
        let d = db();
        let (physical, _) = run(expr);
        let logical = eval_unchecked(expr, &d).into_owned();
        assert_eq!(physical, logical, "physical != logical for {expr}");
    }

    /// Merging shard telemetry must sum **every** field — the worlds
    /// evaluator folds per-shard `OpStats` together, and a field skipped by
    /// `merge` would silently drift. `to_array`/`from_array` destructure
    /// exhaustively, so this test plus the `OP_STATS_FIELDS` bound breaks
    /// at compile time when a counter is added without updating the merge.
    #[test]
    fn op_stats_merge_sums_every_field() {
        // Distinct primes in every slot so a dropped or swapped field is
        // detected no matter which one it is.
        let a = OpStats::from_array([2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]);
        assert_eq!(a.to_array(), [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31]);
        let mut merged = OpStats::default();
        merged.merge(&a);
        merged.merge(&a);
        let doubled: Vec<usize> = a.to_array().iter().map(|x| x * 2).collect();
        assert_eq!(
            merged.to_array().to_vec(),
            doubled,
            "merge must double every field"
        );
        // And the batch/run counters land in the summary telemetry.
        let text = merged.summary();
        assert!(text.contains("batches 34"), "summary: {text}");
        assert!(text.contains("ground rows 38"), "summary: {text}");
        assert!(text.contains("symbolic rows 46"), "summary: {text}");
        assert!(text.contains("tables built 58"), "summary: {text}");
        assert!(text.contains("tables reused 62"), "summary: {text}");
        // The array conversions are inverses — a reordered destructuring
        // would survive the doubling check above but not this roundtrip.
        assert_eq!(OpStats::from_array(a.to_array()), a);
        // The same summary (table counters included) reaches the
        // `explain_executed` footer verbatim, `-- `-prefixed per line.
        let d = db();
        let plan = PlannedQuery::new(RaExpr::relation("R"), d.schema()).unwrap();
        let footer = explain_executed(plan.physical(), &merged);
        for line in merged.summary().lines() {
            assert!(
                footer.contains(&format!("-- {line}")),
                "footer must carry every summary line: {footer}"
            );
        }
    }

    #[test]
    fn equi_join_hashes_and_matches_the_interpreter() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let (out, stats) = run(&q);
        assert_eq!(stats.hash_joins, 1);
        assert!(stats.build_rows > 0 && stats.probe_rows > 0);
        // The null key ⊥0 matches syntactically: R(3,⊥0) ⋈ S(⊥0,300).
        assert!(out.contains(&Tuple::new(vec![
            Value::int(3),
            Value::null(0),
            Value::null(0),
            Value::int(300)
        ])));
        assert_matches_logical(&q);
    }

    #[test]
    fn residual_predicates_filter_join_output() {
        let q = RaExpr::relation("R").product(RaExpr::relation("S")).select(
            Predicate::eq(Operand::col(1), Operand::col(2))
                .and(Predicate::neq(Operand::col(0), Operand::col(3))),
        );
        assert_matches_logical(&q);
    }

    #[test]
    fn every_operator_matches_the_interpreter() {
        let r = RaExpr::relation("R");
        let cases = vec![
            r.clone(),
            r.clone().project(vec![1]),
            r.clone()
                .select(Predicate::eq(Operand::col(0), Operand::int(1))),
            r.clone().product(RaExpr::relation("U")),
            r.clone().project(vec![0]).union(RaExpr::relation("U")),
            r.clone().project(vec![1]).difference(RaExpr::relation("U")),
            r.clone()
                .project(vec![1])
                .intersection(RaExpr::relation("U")),
            r.clone().divide(RaExpr::relation("U")),
            RaExpr::Delta,
            RaExpr::Delta.union(RaExpr::Delta),
            RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[7])]))
                .union(r.clone().project(vec![0])),
        ];
        for q in cases {
            assert_matches_logical(&q);
        }
    }

    #[test]
    fn hash_divide_handles_the_textbook_cases() {
        let q = RaExpr::relation("R").divide(RaExpr::relation("U"));
        let (out, _) = run(&q);
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::ints(&[1])));
        // Empty divisor: every prefix qualifies.
        let mut d = db();
        d.set_relation("U", Relation::new(1)).unwrap();
        let plan = PlannedQuery::new(
            RaExpr::relation("R").divide(RaExpr::relation("U")),
            d.schema(),
        )
        .unwrap();
        let out = execute(plan.physical(), &d);
        assert_eq!(out.len(), 3, "∀ over ∅ holds for all prefixes");
    }

    #[test]
    fn delta_is_computed_once_per_execution() {
        // Two Δ nodes, one execution: the cache serves the second.
        let q = RaExpr::Delta
            .union(RaExpr::Delta.select(Predicate::eq(Operand::col(0), Operand::col(1))));
        let d = db();
        let plan = PlannedQuery::new(q.clone(), d.schema()).unwrap();
        let mut exec = PlainExec {
            db: &d,
            delta: None,
            stats: OpStats::default(),
        };
        let rows = exec.eval(plan.physical().root());
        assert!(exec.delta.is_some(), "Δ cache must be populated");
        assert_eq!(
            Relation::from_tuples(2, rows.into_iter().map(Cow::into_owned)),
            eval_unchecked(&q, &d).into_owned()
        );
    }

    #[test]
    fn leaf_rows_are_borrowed_not_cloned() {
        // Scans must not copy the database: the zero-copy discipline the
        // logical interpreter's `Cow<Relation>` established, kept per row.
        let d = db();
        let plan = PlannedQuery::new(RaExpr::relation("R"), d.schema()).unwrap();
        let mut exec = PlainExec {
            db: &d,
            delta: None,
            stats: OpStats::default(),
        };
        let rows = exec.eval(plan.physical().root());
        assert!(
            rows.iter().all(|c| matches!(c, Cow::Borrowed(_))),
            "scan rows must be borrowed from the database"
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let (_, stats) = run(&q);
        let mut total = OpStats::default();
        total.merge(&stats);
        total.merge(&stats);
        assert_eq!(total.hash_joins, 2 * stats.hash_joins);
        assert_eq!(total.operators, 2 * stats.operators);
    }

    #[test]
    fn split_index_routes_ground_and_symbolic_rows() {
        let rows = [
            Tuple::ints(&[1, 10]),
            Tuple::ints(&[2, 20]),
            Tuple::new(vec![Value::null(0), Value::int(30)]),
        ];
        let index = SplitIndex::build(rows.iter(), &[0], |t| t);
        assert_eq!(index.symbolic_len(), 1);
        // Ground probe: its bucket plus the symbolic row.
        let candidates = index.candidates(&Tuple::ints(&[1, 99]), &[0]);
        assert_eq!(candidates.len(), 2);
        // Null probe: everything.
        let probe = Tuple::new(vec![Value::null(7), Value::int(0)]);
        assert_eq!(index.candidates(&probe, &[0]).len(), 3);
        // Unmatched ground probe: only the symbolic row.
        assert_eq!(index.candidates(&Tuple::ints(&[9, 9]), &[0]).len(), 1);
    }
}
