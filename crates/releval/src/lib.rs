//! # releval — query evaluation engines over incomplete databases
//!
//! Four ways of evaluating a relational algebra query over a database with
//! nulls, corresponding to the positions the paper contrasts:
//!
//! * [`complete`] — the textbook set-semantics evaluator, defined only on
//!   complete databases. This is "existing query evaluation technology".
//! * [`naive`] — *naïve evaluation*: run the very same evaluator on a database
//!   with marked nulls, treating nulls as ordinary values (syntactic
//!   equality). By the paper's Section 6 results this computes certain answers
//!   for UCQs under OWA and for `RA_cwa` under CWA.
//! * [`three_valued`] — SQL's three-valued-logic evaluation (the "practice"
//!   baseline): comparisons with nulls are `unknown`, `WHERE` keeps only
//!   `true` rows, `NOT IN`-style difference drops rows whose membership is
//!   unknown. This is the evaluator that produces the wrong answers of the
//!   paper's introduction.
//! * [`worlds`] — the ground truth: enumerate possible worlds over an adequate
//!   finite domain, evaluate in each world, and intersect. Exponential in the
//!   number of nulls; used to validate the other evaluators and to exhibit the
//!   complexity gap.
//!
//! Four additions support the dispatching engine built on top of this crate:
//!
//! * [`exec`] — the physical-plan executor: one hash-join operator core
//!   (hash equi-join, hash set operators, hash-lookup division) that runs
//!   plain tuples, the approximation pair, and condition-carrying c-table
//!   rows over the same [`relalgebra::physical::PhysicalPlan`]. The hot
//!   path is the **morsel-driven columnar core** ([`exec::columnar`]):
//!   relations transpose once per execution into
//!   [`relmodel::batch::ColumnBatch`]es, operators process fixed-size
//!   morsels with ground rows in tight hash loops and symbolic rows in a
//!   per-row fallback. The row-at-a-time executors are retained as the
//!   differential-fuzz reference. Every strategy below executes through
//!   the batched core; the worlds strategy lowers once and runs the plan
//!   per world;
//! * [`approx`] — certain⁺/possible? *pair evaluation* with marked-null
//!   unification: a polynomial, CWA-sound approximation of certain answers
//!   for **full** relational algebra, where naïve evaluation and 3VL are both
//!   unsound;
//! * [`symbolic`] — the symbolic c-table strategy: lift the database to a
//!   conditional database, evaluate with the Imieliński–Lipski algebra, and
//!   extract **exact** CWA certain answers with a certainty solver
//!   (`ctables::condition::solver`) — polynomial per output tuple where
//!   world enumeration is exponential in the number of nulls, punting
//!   explicitly where it cannot answer;
//! * [`strategy`] — the [`strategy::Strategy`] trait: all evaluators behind
//!   one plan-driven interface, so an engine typechecks a query once and
//!   dispatches freely;
//! * [`split`] — subtree-split execution: evaluate the analyzer's *ground*
//!   (world-invariant) plan regions once on the plain executor and inline
//!   the results as complete literals, so only the genuinely uncertain
//!   remainder needs symbolic or world-enumeration treatment.
//!
//! [`fo`] provides model checking of first-order formulas (the logical-theory
//! view of Section 4) over complete and naïve databases.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod complete;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fo;
pub mod naive;
pub mod split;
pub mod strategy;
pub mod symbolic;
pub mod three_valued;
pub mod worlds;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::complete::eval_complete;
    pub use crate::error::EvalError;
    pub use crate::exec::columnar::execute;
    pub use crate::exec::OpStats;
    pub use crate::fo::{eval_sentence, satisfies};
    pub use crate::naive::{certain_answer_naive, eval_naive};
    pub use crate::split::{inline_ground_subtrees, SplitOutcome};
    pub use crate::strategy::{
        CompleteEvaluation, NaiveEvaluation, Strategy, ThreeValuedEvaluation, WorldEnumeration,
    };
    pub use crate::symbolic::{symbolic_certain_answer, CTableStrategy, SymbolicOptions};
    pub use crate::three_valued::eval_3vl;
    pub use crate::worlds::{certain_answer_worlds, possible_answers, WorldOptions};
}

pub use error::EvalError;
