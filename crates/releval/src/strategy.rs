//! The [`Strategy`] trait: a uniform, plan-driven interface over the four
//! evaluators of this crate.
//!
//! Each strategy takes a [`PlannedQuery`] — an expression that has already
//! been typechecked and classified — so the dispatching engine runs the type
//! checker exactly once per query, not once per evaluator it consults. The
//! implementations correspond to the positions the paper contrasts:
//!
//! | strategy                  | evaluator                | character |
//! |---------------------------|--------------------------|-----------|
//! | [`NaiveEvaluation`]       | [`crate::naive`]         | polynomial; certain answers for UCQ/OWA and `RA_cwa`/CWA |
//! | [`ThreeValuedEvaluation`] | [`crate::three_valued`]  | what SQL does; no guarantee either way |
//! | [`WorldEnumeration`]      | [`crate::worlds`]        | ground truth; exponential in #nulls |
//! | [`CompleteEvaluation`]    | [`crate::complete`]      | textbook evaluation; defined only on complete inputs |
//! | [`crate::symbolic::CTableStrategy`] | [`crate::symbolic`] | exact CWA certain answers via c-tables + certainty solver; polynomial per output tuple, punts explicitly |

use relalgebra::plan::PlannedQuery;
use relmodel::{Database, Relation, Semantics};

use crate::error::EvalError;
use crate::worlds::WorldOptions;
use crate::{exec, three_valued, worlds};

/// A query evaluator usable by a dispatching engine: evaluates pre-typechecked
/// plans without re-running the type checker.
pub trait Strategy {
    /// A short stable name for reports and logs.
    fn name(&self) -> &'static str;

    /// Evaluates the plan over `db`. `semantics` is the possible-world
    /// semantics governing the input; deterministic evaluators ignore it,
    /// world enumeration honours it.
    ///
    /// Implementations must not re-typecheck: the plan carries the proof.
    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        semantics: Semantics,
    ) -> Result<Relation, EvalError>;
}

/// Naïve evaluation — nulls treated as ordinary values, compared
/// syntactically. Returns the *object-level* answer (nulls included).
/// Executes the plan's physical form: hash joins instead of `σ(A×B)` loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NaiveEvaluation;

impl Strategy for NaiveEvaluation {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        _semantics: Semantics,
    ) -> Result<Relation, EvalError> {
        Ok(exec::columnar::execute(plan.physical(), db))
    }
}

/// SQL's three-valued-logic evaluation — the "practice" baseline whose
/// failures the paper's introduction catalogues.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreeValuedEvaluation;

impl Strategy for ThreeValuedEvaluation {
    fn name(&self) -> &'static str {
        "sql-3vl"
    }

    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        _semantics: Semantics,
    ) -> Result<Relation, EvalError> {
        Ok(three_valued::eval_3vl_unchecked(plan.expr(), db))
    }
}

/// Textbook evaluation over complete databases; errors on incomplete input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompleteEvaluation;

impl Strategy for CompleteEvaluation {
    fn name(&self) -> &'static str {
        "complete"
    }

    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        _semantics: Semantics,
    ) -> Result<Relation, EvalError> {
        let nulls = db.null_ids().len();
        if nulls > 0 {
            return Err(EvalError::IncompleteInput { nulls });
        }
        Ok(exec::columnar::execute(plan.physical(), db))
    }
}

/// Possible-world enumeration: the classical intersection-based certain
/// answer, exponential in the number of nulls and bounded by the carried
/// [`WorldOptions`] budget.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldEnumeration(pub WorldOptions);

impl Strategy for WorldEnumeration {
    fn name(&self) -> &'static str {
        "worlds"
    }

    fn eval_unchecked(
        &self,
        plan: &PlannedQuery,
        db: &Database,
        semantics: Semantics,
    ) -> Result<Relation, EvalError> {
        worlds::certain_answer_worlds_planned(plan, db, semantics, &self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::ast::RaExpr;
    use relmodel::builder::orders_and_payments_example;

    fn plan(expr: RaExpr, db: &Database) -> PlannedQuery {
        PlannedQuery::new(expr, db.schema()).unwrap()
    }

    #[test]
    fn strategies_share_one_interface() {
        let db = orders_and_payments_example();
        let q = plan(
            RaExpr::relation("Order")
                .project(vec![0])
                .difference(RaExpr::relation("Pay").project(vec![1])),
            &db,
        );
        let strategies: Vec<Box<dyn Strategy>> = vec![
            Box::new(NaiveEvaluation),
            Box::new(ThreeValuedEvaluation),
            Box::new(WorldEnumeration(WorldOptions::default())),
        ];
        let results: Vec<Relation> = strategies
            .iter()
            .map(|s| s.eval_unchecked(&q, &db, Semantics::Cwa).unwrap())
            .collect();
        // Naïve over-reports both orders, SQL under-reports nothing at all,
        // ground truth is empty — the paper's introduction in three rows.
        assert_eq!(results[0].len(), 2);
        assert!(results[1].is_empty());
        assert!(results[2].is_empty());
        assert_eq!(
            strategies.iter().map(|s| s.name()).collect::<Vec<_>>(),
            vec!["naive", "sql-3vl", "worlds"]
        );
    }

    #[test]
    fn complete_strategy_rejects_incomplete_input() {
        let db = orders_and_payments_example();
        let q = plan(RaExpr::relation("Order"), &db);
        let err = CompleteEvaluation.eval_unchecked(&q, &db, Semantics::Cwa);
        assert!(matches!(err, Err(EvalError::IncompleteInput { .. })));
        let complete = db.complete_part();
        assert!(CompleteEvaluation
            .eval_unchecked(&q, &complete, Semantics::Cwa)
            .is_ok());
    }
}
