//! SQL-style three-valued-logic evaluation — the "practice" baseline whose
//! failures the paper's introduction catalogues.
//!
//! The evaluator mirrors how SQL engines treat nulls:
//!
//! * comparisons involving a null evaluate to `unknown`;
//! * `WHERE` keeps a row only if the condition is `true`;
//! * `t NOT IN S` (our [`RaExpr::Difference`]) keeps `t` only if membership of
//!   `t` in `S` is definitely `false` — if `S` contains a null in a compared
//!   column, membership is `unknown` and the row is dropped;
//! * `t IN S` (our [`RaExpr::Intersection`]) keeps `t` only if membership is
//!   definitely `true`.
//!
//! This reproduces the paper's examples: the unpaid-orders query returns the
//! empty answer, `R − S` is empty whenever `S` contains a null, and the
//! tautological selection `order = 'oid1' OR order <> 'oid1'` drops rows with
//! a null `order`.

use relalgebra::ast::RaExpr;
use relalgebra::typecheck::output_arity;
use relmodel::value::Truth;
use relmodel::{Database, Relation, Tuple};

use crate::error::EvalError;

/// Evaluates an expression under SQL's three-valued logic.
pub fn eval_3vl(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    output_arity(expr, db.schema())?;
    Ok(eval_3vl_unchecked(expr, db))
}

/// Evaluates a Boolean query under 3VL, returning whether the result is
/// nonempty.
pub fn eval_boolean_3vl(expr: &RaExpr, db: &Database) -> Result<bool, EvalError> {
    Ok(!eval_3vl(expr, db)?.is_empty())
}

/// Evaluates under 3VL without re-running the type checker (callers guarantee
/// the expression type-checks against the database schema).
pub fn eval_3vl_unchecked(expr: &RaExpr, db: &Database) -> Relation {
    match expr {
        RaExpr::Relation(name) => db
            .relation(name)
            .cloned()
            .expect("type checker guarantees the relation exists"),
        RaExpr::Values(rel) => rel.clone(),
        RaExpr::Delta => {
            let mut out = Relation::new(2);
            for v in db.active_domain() {
                out.insert(Tuple::new(vec![v.clone(), v]));
            }
            out
        }
        RaExpr::Select(e, p) => {
            let input = eval_3vl_unchecked(e, db);
            let mut out = Relation::new(input.arity());
            for t in input.iter() {
                if p.eval_3vl(t).is_true() {
                    out.insert(t.clone());
                }
            }
            out
        }
        RaExpr::Project(e, cols) => {
            let input = eval_3vl_unchecked(e, db);
            let mut out = Relation::new(cols.len());
            for t in input.iter() {
                out.insert(t.project(cols));
            }
            out
        }
        RaExpr::Product(a, b) => {
            let left = eval_3vl_unchecked(a, db);
            let right = eval_3vl_unchecked(b, db);
            let mut out = Relation::new(left.arity() + right.arity());
            for l in left.iter() {
                for r in right.iter() {
                    out.insert(l.concat(r));
                }
            }
            out
        }
        RaExpr::Union(a, b) => eval_3vl_unchecked(a, db).union(&eval_3vl_unchecked(b, db)),
        RaExpr::Difference(a, b) => {
            // SQL's `NOT IN` semantics: keep a tuple only when its membership
            // in the right-hand side is definitely false.
            let left = eval_3vl_unchecked(a, db);
            let right = eval_3vl_unchecked(b, db);
            let mut out = Relation::new(left.arity());
            for t in left.iter() {
                if membership_3vl(t, &right) == Truth::False {
                    out.insert(t.clone());
                }
            }
            out
        }
        RaExpr::Intersection(a, b) => {
            // SQL's `IN` semantics: keep a tuple only when membership is
            // definitely true.
            let left = eval_3vl_unchecked(a, db);
            let right = eval_3vl_unchecked(b, db);
            let mut out = Relation::new(left.arity());
            for t in left.iter() {
                if membership_3vl(t, &right) == Truth::True {
                    out.insert(t.clone());
                }
            }
            out
        }
        RaExpr::Divide(a, b) => {
            let dividend = eval_3vl_unchecked(a, db);
            let divisor = eval_3vl_unchecked(b, db);
            let prefix_arity = dividend.arity() - divisor.arity();
            let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
            let mut out = Relation::new(prefix_arity);
            let candidates: std::collections::BTreeSet<Tuple> =
                dividend.iter().map(|t| t.project(&prefix_cols)).collect();
            for candidate in candidates {
                let ok = divisor
                    .iter()
                    .all(|s| membership_3vl(&candidate.concat(s), &dividend) == Truth::True);
                if ok {
                    out.insert(candidate);
                }
            }
            out
        }
    }
}

/// Three-valued membership of a tuple in a relation: the disjunction over the
/// relation's tuples of the conjunction of column-wise 3VL equalities.
pub fn membership_3vl(tuple: &Tuple, relation: &Relation) -> Truth {
    let mut result = Truth::False;
    for candidate in relation.iter() {
        let mut row = Truth::True;
        for (a, b) in tuple.values().iter().zip(candidate.values().iter()) {
            row = row.and(a.eq_3vl(b));
        }
        result = result.or(row);
        if result == Truth::True {
            return Truth::True;
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::{difference_example, orders_and_payments_example};
    use relmodel::{DatabaseBuilder, Value};

    #[test]
    fn membership_with_nulls_is_unknown() {
        let rel = Relation::from_tuples(1, vec![Tuple::new(vec![Value::null(0)])]);
        assert_eq!(membership_3vl(&Tuple::ints(&[1]), &rel), Truth::Unknown);
        let rel2 = Relation::from_tuples(1, vec![Tuple::ints(&[1])]);
        assert_eq!(membership_3vl(&Tuple::ints(&[1]), &rel2), Truth::True);
        assert_eq!(membership_3vl(&Tuple::ints(&[2]), &rel2), Truth::False);
        assert_eq!(
            membership_3vl(&Tuple::ints(&[2]), &Relation::new(1)),
            Truth::False
        );
    }

    #[test]
    fn unpaid_orders_query_returns_empty_under_3vl() {
        // SELECT o_id FROM Order WHERE o_id NOT IN (SELECT order FROM Pay)
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order")
            .project(vec![0])
            .difference(RaExpr::relation("Pay").project(vec![1]));
        let out = eval_3vl(&q, &db).unwrap();
        assert!(
            out.is_empty(),
            "SQL tells us every order is paid, even though at most one can be"
        );
    }

    #[test]
    fn difference_trap_r_minus_s() {
        // R = {1,2}, S = {⊥}: R − S is empty under 3VL although |R| > |S|.
        let db = difference_example();
        let q = RaExpr::relation("R").difference(RaExpr::relation("S"));
        assert!(eval_3vl(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn tautology_selection_drops_null_rows() {
        // SELECT p_id FROM Pay WHERE order = 'oid1' OR order <> 'oid1'
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Pay")
            .select(
                Predicate::eq(Operand::col(1), Operand::str("oid1"))
                    .or(Predicate::neq(Operand::col(1), Operand::str("oid1"))),
            )
            .project(vec![0]);
        let out = eval_3vl(&q, &db).unwrap();
        assert!(
            out.is_empty(),
            "the tautology does not select the row with a null order"
        );
    }

    #[test]
    fn positive_queries_agree_with_naive_on_constants() {
        let db = orders_and_payments_example();
        let q = RaExpr::relation("Order").project(vec![0]);
        let three = eval_3vl(&q, &db).unwrap();
        let naive = crate::naive::eval_naive(&q, &db).unwrap();
        assert_eq!(three, naive);
    }

    #[test]
    fn intersection_requires_definite_membership() {
        let db = difference_example();
        // R ∩ S: S = {⊥} so membership of 1 and 2 is unknown — empty answer.
        let q = RaExpr::relation("R").intersection(RaExpr::relation("S"));
        assert!(eval_3vl(&q, &db).unwrap().is_empty());
    }

    #[test]
    fn division_under_3vl() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[1, 20])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[10])
            .ints("S", &[20])
            .build();
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let out = eval_3vl(&q, &db).unwrap();
        // 1 is paired with 10 and 20 definitely; 2 only with an unknown value.
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn boolean_3vl() {
        let db = difference_example();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![]);
        assert!(!eval_boolean_3vl(&q, &db).unwrap());
    }
}
