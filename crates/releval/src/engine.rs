//! The shared set-semantics evaluation engine.
//!
//! A single recursive evaluator serves both [`crate::complete`] (complete
//! inputs) and [`crate::naive`] (inputs with nulls): naïve evaluation is *by
//! definition* the standard evaluator applied verbatim to a database with
//! marked nulls, comparing values syntactically.
//!
//! The evaluator is written against [`Cow<Relation>`] so that leaf
//! expressions — base relations and literal `Values` — are **borrowed** from
//! the database / the expression instead of cloned. A query like
//! `Order minus Pay` therefore copies nothing until an operator actually has
//! to materialise a new relation, and `π`/`×` materialisations reserve their
//! output capacity up front.
//!
//! Since the physical-plan refactor this tree walk is the **logical
//! reference semantics**: the strategies execute rewritten physical plans
//! through [`crate::exec`] (hash joins instead of `σ(A×B)` loops), and the
//! differential harness (`tests/physical_differential.rs`) holds the two
//! equal on random workloads.

use std::borrow::Cow;

use relalgebra::ast::RaExpr;
use relalgebra::typecheck::output_arity;
use relmodel::{Database, Relation, Tuple};

use crate::error::EvalError;

/// Evaluates an expression over a database using syntactic value equality
/// (nulls are treated as ordinary values). Arity constraints are checked via
/// the type checker before evaluation.
pub fn eval(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    output_arity(expr, db.schema())?;
    Ok(eval_unchecked(expr, db).into_owned())
}

/// Evaluates without re-running the type checker (callers guarantee the
/// expression type-checks against the database schema).
///
/// Leaf expressions are returned as borrows: evaluating a bare base relation
/// is free, and operators only pay for the relations they actually build.
pub fn eval_unchecked<'a>(expr: &'a RaExpr, db: &'a Database) -> Cow<'a, Relation> {
    match expr {
        RaExpr::Relation(name) => Cow::Borrowed(
            db.relation(name)
                .expect("type checker guarantees the relation exists"),
        ),
        RaExpr::Values(rel) => Cow::Borrowed(rel),
        RaExpr::Delta => {
            let domain = db.active_domain();
            let mut out = Vec::with_capacity(domain.len());
            for v in domain {
                out.push(Tuple::new(vec![v.clone(), v]));
            }
            Cow::Owned(Relation::from_tuples(2, out))
        }
        RaExpr::Select(e, p) => {
            let input = eval_unchecked(e, db);
            let mut out = Relation::new(input.arity());
            for t in input.iter() {
                if p.eval_naive(t) {
                    out.insert(t.clone());
                }
            }
            Cow::Owned(out)
        }
        RaExpr::Project(e, cols) => {
            let input = eval_unchecked(e, db);
            let mut out = Vec::with_capacity(input.len());
            for t in input.iter() {
                out.push(t.project(cols));
            }
            Cow::Owned(Relation::from_tuples(cols.len(), out))
        }
        RaExpr::Product(a, b) => {
            let left = eval_unchecked(a, db);
            let right = eval_unchecked(b, db);
            let arity = left.arity() + right.arity();
            let mut out = Vec::with_capacity(left.len().saturating_mul(right.len()));
            for l in left.iter() {
                for r in right.iter() {
                    out.push(l.concat(r));
                }
            }
            Cow::Owned(Relation::from_tuples(arity, out))
        }
        RaExpr::Union(a, b) => Cow::Owned(eval_unchecked(a, db).union(&eval_unchecked(b, db))),
        RaExpr::Difference(a, b) => {
            Cow::Owned(eval_unchecked(a, db).difference(&eval_unchecked(b, db)))
        }
        RaExpr::Intersection(a, b) => {
            Cow::Owned(eval_unchecked(a, db).intersection(&eval_unchecked(b, db)))
        }
        RaExpr::Divide(a, b) => {
            let dividend = eval_unchecked(a, db);
            let divisor = eval_unchecked(b, db);
            Cow::Owned(divide(&dividend, &divisor))
        }
    }
}

/// Relational division with syntactic equality: the result contains those
/// prefix tuples `t` (of arity `dividend.arity() - divisor.arity()`) such that
/// `(t, s)` is in the dividend for **every** `s` in the divisor.
///
/// The divisor must be strictly narrower than the dividend; expressions
/// reaching this through the evaluators have that guaranteed by
/// `relalgebra::typecheck` (`TypeError::InvalidDivision`). Calling it
/// directly with a divisor at least as wide panics with an explicit message
/// rather than a bare arithmetic underflow.
pub fn divide(dividend: &Relation, divisor: &Relation) -> Relation {
    assert!(
        divisor.arity() < dividend.arity(),
        "divide: divisor arity {} must be strictly smaller than dividend arity {} \
         (the type checker rejects such expressions before evaluation)",
        divisor.arity(),
        dividend.arity()
    );
    let prefix_arity = dividend.arity() - divisor.arity();
    let prefix_cols: Vec<usize> = (0..prefix_arity).collect();
    let mut out = Relation::new(prefix_arity);
    // Candidate prefixes are the projections of the dividend.
    let candidates: std::collections::BTreeSet<Tuple> =
        dividend.iter().map(|t| t.project(&prefix_cols)).collect();
    for candidate in candidates {
        let all_present = divisor
            .iter()
            .all(|s| dividend.contains(&candidate.concat(s)));
        if all_present {
            out.insert(candidate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Value};

    fn db() -> Database {
        DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .ints("R", &[1, 10])
            .ints("R", &[2, 20])
            .ints("R", &[1, 20])
            .ints("S", &[10])
            .ints("S", &[20])
            .build()
    }

    #[test]
    fn base_and_values() {
        let r = eval(&RaExpr::relation("R"), &db()).unwrap();
        assert_eq!(r.len(), 3);
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[7])]));
        assert_eq!(eval(&lit, &db()).unwrap().len(), 1);
        assert!(eval(&RaExpr::relation("T"), &db()).is_err());
    }

    #[test]
    fn leaf_evaluation_borrows_instead_of_cloning() {
        let d = db();
        let expr = RaExpr::relation("R");
        let out = eval_unchecked(&expr, &d);
        assert!(
            matches!(out, Cow::Borrowed(_)),
            "base relations must not be cloned"
        );
        assert!(std::ptr::eq(&*out, d.relation("R").unwrap()));

        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[7])]));
        assert!(matches!(eval_unchecked(&lit, &d), Cow::Borrowed(_)));

        let op = RaExpr::relation("R").project(vec![0]);
        assert!(matches!(eval_unchecked(&op, &d), Cow::Owned(_)));
    }

    #[test]
    fn select_project_product() {
        let q = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![1]);
        let out = eval(&q, &db()).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::ints(&[10])));
        assert!(out.contains(&Tuple::ints(&[20])));

        let prod = RaExpr::relation("S").product(RaExpr::relation("S"));
        assert_eq!(eval(&prod, &db()).unwrap().len(), 4);
    }

    #[test]
    fn set_operators() {
        let r1 = RaExpr::relation("R").project(vec![1]);
        let union = r1.clone().union(RaExpr::relation("S"));
        assert_eq!(eval(&union, &db()).unwrap().len(), 2);
        let diff = RaExpr::relation("S").difference(r1.clone());
        assert!(eval(&diff, &db()).unwrap().is_empty());
        let inter = RaExpr::relation("S").intersection(r1);
        assert_eq!(eval(&inter, &db()).unwrap().len(), 2);
    }

    #[test]
    fn division_textbook_example() {
        // R ÷ S: which a-values appear with every b of S? a=1 appears with 10 and 20,
        // a=2 only with 20.
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let out = eval(&q, &db()).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn division_by_empty_divisor_returns_all_prefixes() {
        let mut d = db();
        d.set_relation("S", Relation::new(1)).unwrap();
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        let out = eval(&q, &d).unwrap();
        assert_eq!(
            out.len(),
            2,
            "∀ over an empty set holds for every candidate prefix"
        );
    }

    #[test]
    fn delta_is_the_diagonal_of_the_active_domain() {
        let out = eval(&RaExpr::Delta, &db()).unwrap();
        // adom = {1, 2, 10, 20}
        assert_eq!(out.len(), 4);
        assert!(out.contains(&Tuple::ints(&[10, 10])));
    }

    #[test]
    fn delta_includes_nulls_under_naive_evaluation() {
        let d = DatabaseBuilder::new()
            .relation("R", &["a"])
            .tuple("R", vec![Value::null(0)])
            .ints("R", &[1])
            .build();
        let out = eval(&RaExpr::Delta, &d).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.contains(&Tuple::new(vec![Value::null(0), Value::null(0)])));
    }
}
