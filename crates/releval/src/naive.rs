//! Naïve evaluation: run the standard evaluator on a database with marked
//! nulls, treating nulls as ordinary values.
//!
//! The paper's central positive result (Section 6) is that for monotone,
//! generic queries — concretely, UCQs under OWA and `RA_cwa` under CWA —
//! naïve evaluation *is* the certain answer when answers are given the right
//! semantics (`certainO(Q, D) = Q(D)`), and the classical intersection-based
//! certain answers are recovered by keeping the complete part of the result
//! (`certain(Q, D) = Q(D)_cmpl`, equation (4)).

use relalgebra::ast::RaExpr;
use relalgebra::classify::{classify, QueryClass};
use relmodel::{Database, Relation, Semantics};

use crate::engine;
use crate::error::EvalError;

/// Evaluates an expression naïvely over an incomplete database: nulls are
/// treated as ordinary values and compared syntactically.
///
/// The result is itself (in general) an incomplete relation; it is the
/// `certainO` object-level certain answer for query classes where naïve
/// evaluation is correct.
pub fn eval_naive(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    engine::eval(expr, db)
}

/// The classical (intersection-based) certain answer computed by naïve
/// evaluation: evaluate naïvely, then keep only the null-free tuples
/// (equation (4) of the paper). Correct exactly when naïve evaluation works
/// for the query/semantics combination.
pub fn certain_answer_naive(expr: &RaExpr, db: &Database) -> Result<Relation, EvalError> {
    Ok(eval_naive(expr, db)?.complete_part())
}

/// Evaluates a Boolean query naïvely, returning whether the answer is
/// nonempty. For Boolean CQs under OWA this is exactly the certain answer
/// (`D ⊨ Q` iff the certain answer is true — Section 4's duality).
pub fn eval_boolean_naive(expr: &RaExpr, db: &Database) -> Result<bool, EvalError> {
    Ok(!eval_naive(expr, db)?.is_empty())
}

/// Result of [`certain_answer_checked`]: the answer plus a statement of
/// whether the paper's theorems guarantee its correctness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckedAnswer {
    /// The (classical, null-free) certain answer computed naïvely.
    pub answer: Relation,
    /// The syntactic class of the query.
    pub class: QueryClass,
    /// Whether naïve evaluation is guaranteed correct for this class under the
    /// requested semantics.
    pub guaranteed: bool,
}

/// Computes the naïve certain answer together with a correctness guarantee
/// derived from the query's syntactic class (positive ⇒ both semantics,
/// `RA_cwa` ⇒ CWA only, full RA ⇒ no guarantee).
pub fn certain_answer_checked(
    expr: &RaExpr,
    db: &Database,
    semantics: Semantics,
) -> Result<CheckedAnswer, EvalError> {
    let class = classify(expr);
    let answer = certain_answer_naive(expr, db)?;
    Ok(CheckedAnswer {
        answer,
        class,
        guaranteed: class.naive_evaluation_sound(semantics),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::predicate::{Operand, Predicate};
    use relmodel::builder::difference_example;
    use relmodel::{DatabaseBuilder, Tuple, Value};

    #[test]
    fn naive_evaluation_treats_nulls_as_values() {
        // π_A(R − S) with R = {(1,⊥0)}, S = {(1,⊥1)}: naïve evaluation returns {1}
        // (the certain answer is actually ∅ — the paper's example of failure).
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a", "b"])
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .tuple("S", vec![Value::int(1), Value::null(1)])
            .build();
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .project(vec![0]);
        let naive = eval_naive(&q, &db).unwrap();
        assert_eq!(naive.len(), 1);
        assert!(naive.contains(&Tuple::ints(&[1])));
    }

    #[test]
    fn certain_answer_keeps_complete_part() {
        // Identity query over R = {(1,2), (2,⊥)}: naïve answer is R itself, the
        // classical certain answer its complete part {(1,2)}.
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .build();
        let q = RaExpr::relation("R");
        assert_eq!(eval_naive(&q, &db).unwrap().len(), 2);
        let certain = certain_answer_naive(&q, &db).unwrap();
        assert_eq!(certain.len(), 1);
        assert!(certain.contains(&Tuple::ints(&[1, 2])));
    }

    #[test]
    fn boolean_naive_evaluation_is_cq_satisfaction() {
        // The §4 duality example: D = {R(1,⊥), R(⊥,2)}; Q = ∃x,y,z R(x,y) ∧ R(y,z).
        let db = relmodel::builder::tableau_example();
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("R"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![]);
        assert!(eval_boolean_naive(&q, &db).unwrap());
    }

    #[test]
    fn checked_answer_reports_guarantees() {
        let db = difference_example();
        let positive = RaExpr::relation("R").union(RaExpr::relation("S"));
        let checked = certain_answer_checked(&positive, &db, Semantics::Owa).unwrap();
        assert!(checked.guaranteed);
        assert_eq!(checked.class, QueryClass::Positive);

        let full = RaExpr::relation("R").difference(RaExpr::relation("S"));
        let checked = certain_answer_checked(&full, &db, Semantics::Cwa).unwrap();
        assert!(!checked.guaranteed);
        assert_eq!(checked.class, QueryClass::FullRa);

        let division = RaExpr::relation("R")
            .product(RaExpr::relation("R"))
            .divide(RaExpr::relation("S"));
        let checked_cwa = certain_answer_checked(&division, &db, Semantics::Cwa).unwrap();
        assert!(checked_cwa.guaranteed);
        let checked_owa = certain_answer_checked(&division, &db, Semantics::Owa).unwrap();
        assert!(!checked_owa.guaranteed);
    }
}
