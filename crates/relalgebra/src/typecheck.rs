//! Arity checking of relational algebra expressions against a schema.

use std::fmt;

use relmodel::Schema;

use crate::ast::RaExpr;

/// Errors detected while type-checking an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A base relation is not in the schema.
    UnknownRelation(String),
    /// A projection refers to a column outside the operand's arity.
    ProjectionOutOfRange {
        /// Offending column index.
        column: usize,
        /// Arity of the projected expression.
        arity: usize,
    },
    /// A selection predicate refers to a column outside the operand's arity.
    PredicateOutOfRange {
        /// Offending column index.
        column: usize,
        /// Arity of the selected expression.
        arity: usize,
    },
    /// A set operation was applied to operands of different arities.
    ArityMismatch {
        /// Name of the operator (`union`, `difference`, `intersection`).
        operator: &'static str,
        /// Arity of the left operand.
        left: usize,
        /// Arity of the right operand.
        right: usize,
    },
    /// Division where the divisor's arity is not strictly smaller than the
    /// dividend's.
    InvalidDivision {
        /// Arity of the dividend.
        dividend: usize,
        /// Arity of the divisor.
        divisor: usize,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            TypeError::ProjectionOutOfRange { column, arity } => {
                write!(f, "projection onto column #{column} but operand has arity {arity}")
            }
            TypeError::PredicateOutOfRange { column, arity } => {
                write!(f, "predicate mentions column #{column} but operand has arity {arity}")
            }
            TypeError::ArityMismatch { operator, left, right } => {
                write!(f, "{operator} of relations with arities {left} and {right}")
            }
            TypeError::InvalidDivision { dividend, divisor } => write!(
                f,
                "division requires divisor arity ({divisor}) strictly smaller than dividend arity ({dividend})"
            ),
        }
    }
}

impl std::error::Error for TypeError {}

/// Computes the output arity of an expression over the given schema, checking
/// all arity constraints along the way.
pub fn output_arity(expr: &RaExpr, schema: &Schema) -> Result<usize, TypeError> {
    match expr {
        RaExpr::Relation(name) => schema
            .relation(name)
            .map(|rs| rs.arity())
            .ok_or_else(|| TypeError::UnknownRelation(name.clone())),
        RaExpr::Values(rel) => Ok(rel.arity()),
        RaExpr::Delta => Ok(2),
        RaExpr::Select(e, p) => {
            let arity = output_arity(e, schema)?;
            if let Some(max) = p.max_column() {
                if max >= arity {
                    return Err(TypeError::PredicateOutOfRange { column: max, arity });
                }
            }
            Ok(arity)
        }
        RaExpr::Project(e, cols) => {
            let arity = output_arity(e, schema)?;
            for &c in cols {
                if c >= arity {
                    return Err(TypeError::ProjectionOutOfRange { column: c, arity });
                }
            }
            Ok(cols.len())
        }
        RaExpr::Product(a, b) => Ok(output_arity(a, schema)? + output_arity(b, schema)?),
        RaExpr::Union(a, b) => same_arity("union", a, b, schema),
        RaExpr::Difference(a, b) => same_arity("difference", a, b, schema),
        RaExpr::Intersection(a, b) => same_arity("intersection", a, b, schema),
        RaExpr::Divide(a, b) => {
            let dividend = output_arity(a, schema)?;
            let divisor = output_arity(b, schema)?;
            if divisor == 0 || divisor >= dividend {
                return Err(TypeError::InvalidDivision { dividend, divisor });
            }
            Ok(dividend - divisor)
        }
    }
}

fn same_arity(
    operator: &'static str,
    a: &RaExpr,
    b: &RaExpr,
    schema: &Schema,
) -> Result<usize, TypeError> {
    let left = output_arity(a, schema)?;
    let right = output_arity(b, schema)?;
    if left != right {
        return Err(TypeError::ArityMismatch {
            operator,
            left,
            right,
        });
    }
    Ok(left)
}

/// Convenience: checks an expression and returns `()` or the first error.
pub fn typecheck(expr: &RaExpr, schema: &Schema) -> Result<(), TypeError> {
    output_arity(expr, schema).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, Predicate};
    use relmodel::{Relation, Tuple};

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["a"])
            .build()
    }

    #[test]
    fn arities_of_operators() {
        let s = schema();
        assert_eq!(output_arity(&RaExpr::relation("R"), &s), Ok(2));
        assert_eq!(output_arity(&RaExpr::Delta, &s), Ok(2));
        assert_eq!(
            output_arity(&RaExpr::relation("R").product(RaExpr::relation("S")), &s),
            Ok(3)
        );
        assert_eq!(
            output_arity(&RaExpr::relation("R").project(vec![1, 1, 0]), &s),
            Ok(3)
        );
        assert_eq!(
            output_arity(&RaExpr::relation("R").divide(RaExpr::relation("S")), &s),
            Ok(1)
        );
        assert_eq!(
            output_arity(
                &RaExpr::values(Relation::from_tuples(3, vec![Tuple::ints(&[1, 2, 3])])),
                &s
            ),
            Ok(3)
        );
    }

    #[test]
    fn errors_are_detected() {
        let s = schema();
        assert!(matches!(
            output_arity(&RaExpr::relation("T"), &s),
            Err(TypeError::UnknownRelation(_))
        ));
        assert!(matches!(
            output_arity(&RaExpr::relation("S").project(vec![1]), &s),
            Err(TypeError::ProjectionOutOfRange { .. })
        ));
        assert!(matches!(
            output_arity(
                &RaExpr::relation("S").select(Predicate::eq(Operand::col(3), Operand::int(1))),
                &s
            ),
            Err(TypeError::PredicateOutOfRange { .. })
        ));
        assert!(matches!(
            output_arity(&RaExpr::relation("R").union(RaExpr::relation("S")), &s),
            Err(TypeError::ArityMismatch { .. })
        ));
        assert!(matches!(
            output_arity(&RaExpr::relation("S").divide(RaExpr::relation("R")), &s),
            Err(TypeError::InvalidDivision { .. })
        ));
        assert!(typecheck(&RaExpr::relation("R"), &s).is_ok());
        assert!(typecheck(&RaExpr::relation("T"), &s).is_err());
    }

    #[test]
    fn errors_display() {
        let e = TypeError::ArityMismatch {
            operator: "union",
            left: 1,
            right: 2,
        };
        assert!(e.to_string().contains("union"));
        let e = TypeError::InvalidDivision {
            dividend: 1,
            divisor: 1,
        };
        assert!(e.to_string().contains("division"));
    }
}
