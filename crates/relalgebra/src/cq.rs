//! Conjunctive queries, their tableau representation, and homomorphism-based
//! containment.
//!
//! A conjunctive query (CQ) is a `∃,∧`-query `Q(x̄) :- R₁(t̄₁), …, Rₙ(t̄ₙ)`.
//! The paper's Section 4 exploits the duality between CQs and incomplete
//! databases: the body of a Boolean CQ *is* a naïve table (its tableau), and
//! conversely every naïve database is the tableau of a Boolean CQ (its
//! canonical query). Certain answers under OWA reduce to CQ containment,
//! which by the Chandra–Merlin theorem reduces to homomorphism existence.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use relmodel::value::{Constant, NullId, Value};
use relmodel::{Database, Schema, Tuple};

/// A term of a conjunctive query: a variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, identified by a number.
    Var(u64),
    /// A constant.
    Const(Constant),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(i: u64) -> Self {
        Term::Var(i)
    }

    /// Convenience constructor for an integer constant term.
    pub fn int(i: i64) -> Self {
        Term::Const(Constant::Int(i))
    }

    /// Convenience constructor for a string constant term.
    pub fn str(s: impl Into<String>) -> Self {
        Term::Const(Constant::Str(s.into()))
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(i) => write!(f, "x{i}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A relational atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom.
    pub fn new(relation: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<u64> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                Term::Var(v) => Some(*v),
                Term::Const(_) => None,
            })
            .collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<String> = self.terms.iter().map(|t| t.to_string()).collect();
        write!(f, "{}({})", self.relation, args.join(", "))
    }
}

/// A conjunctive query `head :- body` (the head lists the free/output terms;
/// an empty head makes the query Boolean).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ConjunctiveQuery {
    /// Output terms (answer tuple template).
    pub head: Vec<Term>,
    /// Body atoms, implicitly conjoined and existentially closed.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query.
    pub fn new(head: Vec<Term>, body: Vec<Atom>) -> Self {
        ConjunctiveQuery { head, body }
    }

    /// Creates a Boolean conjunctive query (empty head).
    pub fn boolean(body: Vec<Atom>) -> Self {
        ConjunctiveQuery {
            head: Vec::new(),
            body,
        }
    }

    /// Is the query Boolean?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.len()
    }

    /// All variables of the query (head and body).
    pub fn variables(&self) -> BTreeSet<u64> {
        let mut vars: BTreeSet<u64> = self.body.iter().flat_map(|a| a.variables()).collect();
        for t in &self.head {
            if let Term::Var(v) = t {
                vars.insert(*v);
            }
        }
        vars
    }

    /// Is the query *safe*: every head variable occurs in the body?
    pub fn is_safe(&self) -> bool {
        let body_vars: BTreeSet<u64> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.iter().all(|t| match t {
            Term::Var(v) => body_vars.contains(v),
            Term::Const(_) => true,
        })
    }

    /// Constants mentioned by the query.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        for t in self
            .head
            .iter()
            .chain(self.body.iter().flat_map(|a| a.terms.iter()))
        {
            if let Term::Const(c) = t {
                out.insert(c.clone());
            }
        }
        out
    }

    /// Renames every variable by adding `offset`; used to make two queries
    /// variable-disjoint before combining them.
    pub fn shift_vars(&self, offset: u64) -> ConjunctiveQuery {
        let shift = |t: &Term| match t {
            Term::Var(v) => Term::Var(v + offset),
            c => c.clone(),
        };
        ConjunctiveQuery {
            head: self.head.iter().map(shift).collect(),
            body: self
                .body
                .iter()
                .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(shift).collect()))
                .collect(),
        }
    }

    /// The largest variable index used, if any.
    pub fn max_var(&self) -> Option<u64> {
        self.variables().into_iter().max()
    }

    /// Applies a substitution of variables by terms to the whole query.
    pub fn substitute(&self, subst: &BTreeMap<u64, Term>) -> ConjunctiveQuery {
        let apply = |t: &Term| match t {
            Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| t.clone()),
            c => c.clone(),
        };
        ConjunctiveQuery {
            head: self.head.iter().map(apply).collect(),
            body: self
                .body
                .iter()
                .map(|a| Atom::new(a.relation.clone(), a.terms.iter().map(apply).collect()))
                .collect(),
        }
    }

    /// The *tableau* (canonical database) of the query: its body atoms, with
    /// each variable turned into a marked null.
    ///
    /// This is the object half of the duality of Section 4: the tableau of
    /// `Q_D` is `D` itself.
    pub fn tableau(&self, schema: &Schema) -> Database {
        let mut db = Database::new(schema.clone());
        for atom in &self.body {
            let tuple: Tuple = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Var(v) => Value::Null(NullId(*v)),
                    Term::Const(c) => Value::Const(c.clone()),
                })
                .collect();
            db.insert(&atom.relation, tuple)
                .unwrap_or_else(|e| panic!("query atom {atom} does not fit schema: {e}"));
        }
        db
    }

    /// The head as a tuple over `Const ∪ Null` (variables become nulls); this
    /// is the "answer template" matching [`ConjunctiveQuery::tableau`].
    pub fn head_tuple(&self) -> Tuple {
        self.head
            .iter()
            .map(|t| match t {
                Term::Var(v) => Value::Null(NullId(*v)),
                Term::Const(c) => Value::Const(c.clone()),
            })
            .collect()
    }

    /// The canonical (Boolean) query of a naïve database: its positive diagram
    /// viewed as a query, with each null becoming a variable. Inverse of
    /// [`ConjunctiveQuery::tableau`] for Boolean queries.
    pub fn canonical_query_of(db: &Database) -> ConjunctiveQuery {
        let mut body = Vec::new();
        for (name, rel) in db.iter() {
            for t in rel.iter() {
                let terms: Vec<Term> = t
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Null(n) => Term::Var(n.0),
                        Value::Const(c) => Term::Const(c.clone()),
                    })
                    .collect();
                body.push(Atom::new(name, terms));
            }
        }
        ConjunctiveQuery::boolean(body)
    }

    /// Decides containment `self ⊆ other` by the Chandra–Merlin theorem:
    /// `self ⊆ other` iff there is a homomorphism from `other` to `self`
    /// mapping head to head (variables to terms, constants to themselves).
    pub fn contained_in(&self, other: &ConjunctiveQuery) -> bool {
        if self.arity() != other.arity() {
            return false;
        }
        // Freeze `self`: treat its variables as distinct fresh constants; the
        // frozen body is the structure we search a homomorphism into.
        let frozen_facts: Vec<Atom> = self.body.clone();
        // The homomorphism must map other's head terms onto self's head terms
        // (frozen). Seed the assignment accordingly.
        let mut assignment: BTreeMap<u64, Term> = BTreeMap::new();
        for (o, s) in other.head.iter().zip(self.head.iter()) {
            match o {
                Term::Const(c) => {
                    // constants in the container head must match literally
                    if Term::Const(c.clone()) != *s {
                        return false;
                    }
                }
                Term::Var(v) => {
                    if let Some(prev) = assignment.get(v) {
                        if prev != s {
                            return false;
                        }
                    } else {
                        assignment.insert(*v, s.clone());
                    }
                }
            }
        }
        hom_search(&other.body, 0, &frozen_facts, &mut assignment)
    }

    /// Decides equivalence of two conjunctive queries (mutual containment).
    pub fn equivalent_to(&self, other: &ConjunctiveQuery) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Minimises the query (computes its core): repeatedly tries to drop a
    /// body atom while preserving equivalence.
    pub fn minimize(&self) -> ConjunctiveQuery {
        let mut current = self.clone();
        loop {
            let mut improved = false;
            for i in 0..current.body.len() {
                let mut candidate = current.clone();
                candidate.body.remove(i);
                if !candidate.is_safe() {
                    continue;
                }
                if candidate.equivalent_to(&current) {
                    current = candidate;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return current;
            }
        }
    }
}

/// Backtracking homomorphism search: finds an assignment of the variables of
/// `pattern` (processed atom by atom from `idx`) to terms of the frozen
/// `target` atoms such that every pattern atom maps onto some target atom.
fn hom_search(
    pattern: &[Atom],
    idx: usize,
    target: &[Atom],
    assignment: &mut BTreeMap<u64, Term>,
) -> bool {
    if idx == pattern.len() {
        return true;
    }
    let atom = &pattern[idx];
    for fact in target.iter().filter(|f| f.relation == atom.relation) {
        if fact.terms.len() != atom.terms.len() {
            continue;
        }
        let mut added: Vec<u64> = Vec::new();
        let mut ok = true;
        for (pt, ft) in atom.terms.iter().zip(fact.terms.iter()) {
            match pt {
                Term::Const(c) => {
                    if Term::Const(c.clone()) != *ft {
                        ok = false;
                        break;
                    }
                }
                Term::Var(v) => match assignment.get(v) {
                    Some(existing) => {
                        if existing != ft {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        assignment.insert(*v, ft.clone());
                        added.push(*v);
                    }
                },
            }
        }
        if ok && hom_search(pattern, idx + 1, target, assignment) {
            return true;
        }
        for v in added {
            assignment.remove(&v);
        }
    }
    false
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let head: Vec<String> = self.head.iter().map(|t| t.to_string()).collect();
        let body: Vec<String> = self.body.iter().map(|a| a.to_string()).collect();
        write!(f, "Q({}) :- {}", head.join(", "), body.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::Schema;

    fn schema() -> Schema {
        Schema::builder().relation("R", &["a", "b"]).build()
    }

    /// The paper's §4 example: R = {(1,⊥),(⊥,2)} viewed as the Boolean CQ
    /// ∃x R(1,x) ∧ R(x,2).
    fn paper_cq() -> ConjunctiveQuery {
        ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![Term::int(1), Term::var(0)]),
            Atom::new("R", vec![Term::var(0), Term::int(2)]),
        ])
    }

    #[test]
    fn basic_accessors() {
        let q = paper_cq();
        assert!(q.is_boolean());
        assert_eq!(q.arity(), 0);
        assert_eq!(q.variables().len(), 1);
        assert_eq!(q.constants().len(), 2);
        assert!(q.is_safe());
        assert_eq!(q.max_var(), Some(0));
        assert!(q.to_string().contains("R(1, x0)"));
    }

    #[test]
    fn tableau_roundtrip() {
        let q = paper_cq();
        let db = q.tableau(&schema());
        assert_eq!(db.relation("R").unwrap().len(), 2);
        assert_eq!(db.null_ids().len(), 1);
        let back = ConjunctiveQuery::canonical_query_of(&db);
        assert!(
            back.equivalent_to(&q),
            "tableau ↔ canonical query is an equivalence"
        );
    }

    #[test]
    fn unsafe_query_detected() {
        let q = ConjunctiveQuery::new(
            vec![Term::var(5)],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        assert!(!q.is_safe());
    }

    #[test]
    fn containment_boolean() {
        // Q1 = ∃x,y R(x,y) ∧ R(y,x); Q2 = ∃x,y R(x,y). Q1 ⊆ Q2.
        let q1 = ConjunctiveQuery::boolean(vec![
            Atom::new("R", vec![Term::var(0), Term::var(1)]),
            Atom::new("R", vec![Term::var(1), Term::var(0)]),
        ]);
        let q2 = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![Term::var(0), Term::var(1)])]);
        assert!(q1.contained_in(&q2));
        assert!(!q2.contained_in(&q1));
        assert!(!q1.equivalent_to(&q2));
    }

    #[test]
    fn containment_with_head_and_constants() {
        // Q1(x) :- R(x, 1) ; Q2(x) :- R(x, y). Q1 ⊆ Q2 but not conversely.
        let q1 = ConjunctiveQuery::new(
            vec![Term::var(0)],
            vec![Atom::new("R", vec![Term::var(0), Term::int(1)])],
        );
        let q2 = ConjunctiveQuery::new(
            vec![Term::var(0)],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        assert!(q1.contained_in(&q2));
        assert!(!q2.contained_in(&q1));
    }

    #[test]
    fn containment_rejects_arity_mismatch() {
        let q1 = ConjunctiveQuery::new(
            vec![Term::var(0)],
            vec![Atom::new("R", vec![Term::var(0), Term::var(1)])],
        );
        let q2 = ConjunctiveQuery::boolean(vec![Atom::new("R", vec![Term::var(0), Term::var(1)])]);
        assert!(!q1.contained_in(&q2));
    }

    #[test]
    fn minimization_removes_redundant_atoms() {
        // Q(x) :- R(x,y), R(x,z) minimises to Q(x) :- R(x,y).
        let q = ConjunctiveQuery::new(
            vec![Term::var(0)],
            vec![
                Atom::new("R", vec![Term::var(0), Term::var(1)]),
                Atom::new("R", vec![Term::var(0), Term::var(2)]),
            ],
        );
        let m = q.minimize();
        assert_eq!(m.body.len(), 1);
        assert!(m.equivalent_to(&q));
    }

    #[test]
    fn shift_and_substitute() {
        let q = paper_cq().shift_vars(10);
        assert_eq!(q.max_var(), Some(10));
        let mut subst = BTreeMap::new();
        subst.insert(10u64, Term::int(9));
        let grounded = q.substitute(&subst);
        assert!(grounded.variables().is_empty());
    }

    #[test]
    fn head_tuple_uses_nulls_for_vars() {
        let q = ConjunctiveQuery::new(
            vec![Term::var(3), Term::int(2)],
            vec![Atom::new("R", vec![Term::var(3), Term::var(4)])],
        );
        let t = q.head_tuple();
        assert_eq!(t.values()[0], Value::null(3));
        assert_eq!(t.values()[1], Value::int(2));
    }
}
