//! Classification of relational algebra expressions into the fragments whose
//! behaviour over incomplete data the paper characterises.
//!
//! * [`QueryClass::Positive`] — positive relational algebra (σ, π, ×, ∪, ∩
//!   with positive selection conditions). Equivalent to unions of conjunctive
//!   queries; **OWA- and CWA-naïve evaluation is correct** for this class.
//! * [`QueryClass::RaCwa`] — `RA_cwa`: positive algebra extended with division
//!   `Q ÷ Q'` where the divisor `Q'` belongs to `RA(Δ, π, ×, ∪)`. This class
//!   coincides with the logical fragment `Pos∀G` (positive formulas with
//!   universal guards); **CWA-naïve evaluation is correct** for it, but
//!   OWA-naïve evaluation is not.
//! * [`QueryClass::FullRa`] — full relational algebra (difference, negated or
//!   inequality conditions). Naïve evaluation is not correct in general;
//!   certain answers are coNP-hard under CWA and undecidable under OWA.

use std::fmt;

use crate::ast::RaExpr;

/// The query fragments relevant to the paper's naïve-evaluation results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QueryClass {
    /// Positive relational algebra = unions of conjunctive queries.
    Positive,
    /// Positive algebra plus division by an `RA(Δ,π,×,∪)` expression
    /// (= `Pos∀G`).
    RaCwa,
    /// Full relational algebra.
    FullRa,
}

impl QueryClass {
    /// Is naïve evaluation guaranteed to compute certain answers for this
    /// class under the given semantics?
    pub fn naive_evaluation_sound(self, semantics: relmodel::Semantics) -> bool {
        match (self, semantics) {
            (QueryClass::Positive, _) => true,
            (QueryClass::RaCwa, relmodel::Semantics::Cwa) => true,
            (QueryClass::RaCwa, relmodel::Semantics::Owa) => false,
            (QueryClass::FullRa, _) => false,
        }
    }
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryClass::Positive => write!(f, "positive (UCQ)"),
            QueryClass::RaCwa => write!(f, "RA_cwa (Pos∀G)"),
            QueryClass::FullRa => write!(f, "full relational algebra"),
        }
    }
}

/// Classifies an expression into the *smallest* fragment containing it
/// (syntactically — no semantic equivalences are attempted).
///
/// A thin wrapper over the static analyzer: classification is the `class`
/// field of [`crate::analysis::analyze`] run against the pessimistic
/// (no-information) null census, so the classifier and the analyzer share
/// one set of transfer functions and can never drift. Notably, a *complete*
/// `Values` literal is positive while a null-bearing one is full RA:
/// possible worlds value the nulls of the *database* but leave query
/// literals untouched, while naïve evaluation happily equates a literal
/// `⊥ᵢ` with a database `⊥ᵢ` — an equality that fails in every world (see
/// the classifier tests for a concrete counterexample).
pub fn classify(expr: &RaExpr) -> QueryClass {
    crate::analysis::analyze(expr, &crate::analysis::NullCensus::pessimistic())
        .root()
        .class
}

/// Does the expression contain a `Values` literal mentioning marked nulls?
///
/// Possible worlds value the nulls of the *database* but leave query
/// literals untouched, while representation-based evaluators (naïve
/// evaluation, the c-table algebra) equate a literal `⊥ᵢ` with a database
/// `⊥ᵢ` syntactically — the classifier's counterexample for why such
/// literals are not positive. The engine's symbolic c-table strategy uses
/// this predicate to punt on exactly those queries instead of silently
/// conflating the two kinds of null.
pub fn has_incomplete_values(expr: &RaExpr) -> bool {
    crate::analysis::analyze(expr, &crate::analysis::NullCensus::pessimistic())
        .root()
        .has_null_literal
}

/// Is the expression in `RA(Δ, π, ×, ∪)` — the class of admissible divisors in
/// `RA_cwa` (base relations and `Δ`, closed under projection, product and
/// union; no selection, difference or division)?
pub fn is_divisor_class(expr: &RaExpr) -> bool {
    match expr {
        RaExpr::Relation(_) | RaExpr::Delta => true,
        RaExpr::Values(rel) => rel.is_complete(),
        RaExpr::Project(e, _) => is_divisor_class(e),
        RaExpr::Product(a, b) | RaExpr::Union(a, b) => is_divisor_class(a) && is_divisor_class(b),
        RaExpr::Select(_, _)
        | RaExpr::Intersection(_, _)
        | RaExpr::Difference(_, _)
        | RaExpr::Divide(_, _) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, Predicate};
    use relmodel::{Relation, Semantics, Tuple, Value};

    #[test]
    fn positive_queries() {
        let q = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![0])
            .union(RaExpr::relation("S"));
        assert_eq!(classify(&q), QueryClass::Positive);
        assert!(classify(&q).naive_evaluation_sound(Semantics::Owa));
        assert!(classify(&q).naive_evaluation_sound(Semantics::Cwa));
        assert_eq!(
            classify(&RaExpr::relation("R").intersection(RaExpr::relation("R"))),
            QueryClass::Positive
        );
    }

    #[test]
    fn difference_and_negation_are_full_ra() {
        let diff = RaExpr::relation("R").difference(RaExpr::relation("S"));
        assert_eq!(classify(&diff), QueryClass::FullRa);
        assert!(!classify(&diff).naive_evaluation_sound(Semantics::Cwa));

        let neg = RaExpr::relation("R").select(Predicate::neq(Operand::col(0), Operand::int(1)));
        assert_eq!(classify(&neg), QueryClass::FullRa);

        let not =
            RaExpr::relation("R").select(Predicate::eq(Operand::col(0), Operand::int(1)).negate());
        assert_eq!(classify(&not), QueryClass::FullRa);
    }

    #[test]
    fn division_by_base_relation_is_racwa() {
        let q = RaExpr::relation("R").divide(RaExpr::relation("S"));
        assert_eq!(classify(&q), QueryClass::RaCwa);
        assert!(classify(&q).naive_evaluation_sound(Semantics::Cwa));
        assert!(!classify(&q).naive_evaluation_sound(Semantics::Owa));
    }

    #[test]
    fn division_by_ra_delta_projection_union_is_racwa() {
        let divisor = RaExpr::relation("S")
            .project(vec![0])
            .union(RaExpr::Delta.project(vec![0]));
        assert!(is_divisor_class(&divisor));
        let q = RaExpr::relation("R").divide(divisor);
        assert_eq!(classify(&q), QueryClass::RaCwa);
    }

    #[test]
    fn division_by_selected_relation_is_full_ra() {
        let divisor = RaExpr::relation("S").select(Predicate::eq(Operand::col(0), Operand::int(1)));
        assert!(!is_divisor_class(&divisor));
        let q = RaExpr::relation("R").divide(divisor);
        assert_eq!(classify(&q), QueryClass::FullRa);
    }

    #[test]
    fn values_with_nulls_are_not_positive() {
        // Counterexample to "literals are always positive": with
        // D = { R(1, ⊥0) } and Q = π_{0,3}(σ_{#1 = #2}(R × {(⊥0, 7)})),
        // naïve evaluation joins the database ⊥0 with the literal ⊥0
        // syntactically and outputs the complete tuple (1, 7). But every
        // possible world values the database null to some constant c while
        // the literal keeps ⊥0, so the join is empty in every world and the
        // certain answer is ∅. Treating the literal as positive would let a
        // dispatcher claim that naïve answer "exact"; the classifier must
        // route it to the conservative fragment instead.
        let complete = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        assert_eq!(classify(&complete), QueryClass::Positive);
        let with_null = RaExpr::values(Relation::from_tuples(
            2,
            vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
        ));
        assert_eq!(classify(&with_null), QueryClass::FullRa);
        assert!(!classify(&with_null).naive_evaluation_sound(Semantics::Cwa));
        let joined = RaExpr::relation("R")
            .product(with_null)
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0, 3]);
        assert_eq!(classify(&joined), QueryClass::FullRa);
        assert!(has_incomplete_values(&joined));
    }

    #[test]
    fn incomplete_values_detection() {
        let clean = RaExpr::relation("R").difference(RaExpr::values(Relation::from_tuples(
            1,
            vec![Tuple::ints(&[1])],
        )));
        assert!(!has_incomplete_values(&clean));
        let dirty = RaExpr::relation("R").union(RaExpr::values(Relation::from_tuples(
            1,
            vec![Tuple::new(vec![Value::null(3)])],
        )));
        assert!(has_incomplete_values(&dirty));
    }

    #[test]
    fn values_divisor_must_be_complete() {
        let complete = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        assert!(is_divisor_class(&complete));
        let with_null = RaExpr::values(Relation::from_tuples(
            1,
            vec![Tuple::new(vec![Value::null(0)])],
        ));
        assert!(!is_divisor_class(&with_null));
    }

    #[test]
    fn nesting_divisions() {
        // (R ÷ S) ÷ T : dividend is RA_cwa, divisor is a base relation — stays RA_cwa.
        let q = RaExpr::relation("R")
            .divide(RaExpr::relation("S"))
            .divide(RaExpr::relation("T"));
        assert_eq!(classify(&q), QueryClass::RaCwa);
        // Division nested inside a difference is full RA.
        let q2 = RaExpr::relation("R")
            .difference(RaExpr::relation("R"))
            .divide(RaExpr::relation("S"));
        assert_eq!(classify(&q2), QueryClass::FullRa);
    }

    #[test]
    fn display_names() {
        assert_eq!(QueryClass::Positive.to_string(), "positive (UCQ)");
        assert_eq!(QueryClass::RaCwa.to_string(), "RA_cwa (Pos∀G)");
        assert_eq!(QueryClass::FullRa.to_string(), "full relational algebra");
    }
}
