//! Pre-typechecked, pre-classified query plans.
//!
//! A [`PlannedQuery`] bundles a relational algebra expression with the facts
//! every evaluator needs and that are wasteful to recompute per evaluator:
//! its output arity against a fixed schema (the type check), its syntactic
//! [`QueryClass`], and the rewritten [`PhysicalPlan`] the executors run. The
//! evaluation engine typechecks and lowers **once** when the plan is built;
//! downstream strategies trust the plan, skip the checker, and share the
//! physical plan — the worlds strategy in particular lowers once and
//! executes the same physical plan in every possible world.

use std::fmt;

use relmodel::Schema;

use crate::ast::RaExpr;
use crate::classify::{classify, QueryClass};
use crate::physical::PhysicalPlan;
use crate::typecheck::{output_arity, TypeError};

/// A typechecked and classified query, bound to the schema it was checked
/// against, carrying its lowered physical plan.
///
/// Construction is the only place arity errors can surface; every accessor is
/// infallible afterwards. The expression is immutable once planned, so the
/// recorded arity, class, and physical plan cannot go stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedQuery {
    expr: RaExpr,
    arity: usize,
    class: QueryClass,
    physical: PhysicalPlan,
}

impl PlannedQuery {
    /// Typechecks `expr` against `schema`, classifies it into the smallest
    /// fragment of the paper's taxonomy, and lowers it to a physical plan.
    pub fn new(expr: RaExpr, schema: &Schema) -> Result<Self, TypeError> {
        let arity = output_arity(&expr, schema)?;
        let class = classify(&expr);
        let physical = PhysicalPlan::lower_unchecked(&expr, schema);
        Ok(PlannedQuery {
            expr,
            arity,
            class,
            physical,
        })
    }

    /// The planned expression.
    pub fn expr(&self) -> &RaExpr {
        &self.expr
    }

    /// The output arity established by the type check.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The syntactic query class (positive / `RA_cwa` / full RA).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The rewritten physical plan — lowered once at construction, shared by
    /// every strategy that executes this query.
    pub fn physical(&self) -> &PhysicalPlan {
        &self.physical
    }

    /// Consumes the plan, returning the underlying expression.
    pub fn into_expr(self) -> RaExpr {
        self.expr
    }
}

impl fmt::Display for PlannedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} [{}]", self.expr, self.arity, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .build()
    }

    #[test]
    fn plans_record_arity_and_class() {
        let s = schema();
        let q = RaExpr::relation("R").project(vec![0]);
        let plan = PlannedQuery::new(q.clone(), &s).unwrap();
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.class(), QueryClass::Positive);
        assert_eq!(plan.expr(), &q);
        assert_eq!(plan.physical().arity(), 1);
        assert!(plan.physical().operator_count() >= 2);
        assert_eq!(plan.clone().into_expr(), q);

        let div =
            PlannedQuery::new(RaExpr::relation("R").divide(RaExpr::relation("S")), &s).unwrap();
        assert_eq!(div.arity(), 1);
        assert_eq!(div.class(), QueryClass::RaCwa);

        let diff =
            PlannedQuery::new(RaExpr::relation("S").difference(RaExpr::relation("S")), &s).unwrap();
        assert_eq!(diff.class(), QueryClass::FullRa);
    }

    #[test]
    fn type_errors_surface_at_plan_time() {
        let s = schema();
        assert!(PlannedQuery::new(RaExpr::relation("T"), &s).is_err());
        assert!(PlannedQuery::new(RaExpr::relation("S").project(vec![9]), &s).is_err());
    }

    #[test]
    fn display_mentions_arity_and_class() {
        let s = schema();
        let plan = PlannedQuery::new(RaExpr::relation("S"), &s).unwrap();
        assert!(plan.to_string().contains("positive"));
    }
}
