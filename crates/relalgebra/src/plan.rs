//! Pre-typechecked, pre-classified query plans.
//!
//! A [`PlannedQuery`] bundles a relational algebra expression with the two
//! facts every evaluator needs and that are wasteful to recompute per
//! evaluator: its output arity against a fixed schema (the type check) and
//! its syntactic [`QueryClass`]. The evaluation engine typechecks **once**
//! when the plan is built; downstream strategies trust the plan and skip the
//! checker.

use std::fmt;

use relmodel::Schema;

use crate::ast::RaExpr;
use crate::classify::{classify, QueryClass};
use crate::typecheck::{output_arity, TypeError};

/// A typechecked and classified query, bound to the schema it was checked
/// against.
///
/// Construction is the only place arity errors can surface; every accessor is
/// infallible afterwards. The expression is immutable once planned, so the
/// recorded arity and class cannot go stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedQuery {
    expr: RaExpr,
    arity: usize,
    class: QueryClass,
}

impl PlannedQuery {
    /// Typechecks `expr` against `schema` and classifies it into the smallest
    /// fragment of the paper's taxonomy.
    pub fn new(expr: RaExpr, schema: &Schema) -> Result<Self, TypeError> {
        let arity = output_arity(&expr, schema)?;
        let class = classify(&expr);
        Ok(PlannedQuery { expr, arity, class })
    }

    /// The planned expression.
    pub fn expr(&self) -> &RaExpr {
        &self.expr
    }

    /// The output arity established by the type check.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The syntactic query class (positive / `RA_cwa` / full RA).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// Consumes the plan, returning the underlying expression.
    pub fn into_expr(self) -> RaExpr {
        self.expr
    }
}

impl fmt::Display for PlannedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} [{}]", self.expr, self.arity, self.class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .build()
    }

    #[test]
    fn plans_record_arity_and_class() {
        let s = schema();
        let q = RaExpr::relation("R").project(vec![0]);
        let plan = PlannedQuery::new(q.clone(), &s).unwrap();
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.class(), QueryClass::Positive);
        assert_eq!(plan.expr(), &q);
        assert_eq!(plan.clone().into_expr(), q);

        let div =
            PlannedQuery::new(RaExpr::relation("R").divide(RaExpr::relation("S")), &s).unwrap();
        assert_eq!(div.arity(), 1);
        assert_eq!(div.class(), QueryClass::RaCwa);

        let diff =
            PlannedQuery::new(RaExpr::relation("S").difference(RaExpr::relation("S")), &s).unwrap();
        assert_eq!(diff.class(), QueryClass::FullRa);
    }

    #[test]
    fn type_errors_surface_at_plan_time() {
        let s = schema();
        assert!(PlannedQuery::new(RaExpr::relation("T"), &s).is_err());
        assert!(PlannedQuery::new(RaExpr::relation("S").project(vec![9]), &s).is_err());
    }

    #[test]
    fn display_mentions_arity_and_class() {
        let s = schema();
        let plan = PlannedQuery::new(RaExpr::relation("S"), &s).unwrap();
        assert!(plan.to_string().contains("positive"));
    }
}
