//! Selection predicates: Boolean combinations of (in)equality atoms over
//! column positions and constants.
//!
//! The paper's fragments are defined over equality atoms; inequality (`≠`) and
//! negation are what pushes a query out of the positive fragment, which is why
//! the classifier in [`crate::classify`] inspects predicates.

use std::collections::BTreeSet;
use std::fmt;

use relmodel::value::{Constant, Value};
use relmodel::Tuple;

/// One side of a comparison: a column of the input tuple or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Operand {
    /// The value in the given (0-based) column.
    Column(usize),
    /// A constant.
    Const(Constant),
}

impl Operand {
    /// Convenience constructor for a column operand.
    pub fn col(i: usize) -> Self {
        Operand::Column(i)
    }

    /// Convenience constructor for an integer constant operand.
    pub fn int(i: i64) -> Self {
        Operand::Const(Constant::Int(i))
    }

    /// Convenience constructor for a string constant operand.
    pub fn str(s: impl Into<String>) -> Self {
        Operand::Const(Constant::Str(s.into()))
    }

    /// Resolves the operand against a tuple (columns out of range are a
    /// programming error caught by the type checker; this panics).
    pub fn resolve(&self, tuple: &Tuple) -> Value {
        match self {
            Operand::Column(i) => tuple[*i].clone(),
            Operand::Const(c) => Value::Const(c.clone()),
        }
    }

    /// The largest column index mentioned, if any.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Operand::Column(i) => Some(*i),
            Operand::Const(_) => None,
        }
    }

    /// Constants mentioned by the operand.
    pub fn constants(&self) -> BTreeSet<Constant> {
        match self {
            Operand::Column(_) => BTreeSet::new(),
            Operand::Const(c) => std::iter::once(c.clone()).collect(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Column(i) => write!(f, "#{i}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A selection predicate.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Predicate {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Equality of two operands.
    Eq(Operand, Operand),
    /// Inequality of two operands (not positive: pushes a query out of UCQ).
    NotEq(Operand, Operand),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation (not positive).
    Not(Box<Predicate>),
}

impl Predicate {
    /// `a = b`.
    pub fn eq(a: Operand, b: Operand) -> Self {
        Predicate::Eq(a, b)
    }

    /// `a ≠ b`.
    pub fn neq(a: Operand, b: Operand) -> Self {
        Predicate::NotEq(a, b)
    }

    /// Conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation of a predicate.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Is the predicate *positive*: free of `Not` and `NotEq` (and `False`,
    /// which is the negation of `True`)?
    ///
    /// Positive predicates keep selections inside the positive relational
    /// algebra / UCQ fragment for which OWA-naïve evaluation is correct.
    pub fn is_positive(&self) -> bool {
        match self {
            Predicate::True | Predicate::Eq(_, _) => true,
            Predicate::False | Predicate::NotEq(_, _) | Predicate::Not(_) => false,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.is_positive() && b.is_positive(),
        }
    }

    /// The largest column index mentioned, if any. Used for arity checking.
    pub fn max_column(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Eq(a, b) | Predicate::NotEq(a, b) => {
                a.max_column().into_iter().chain(b.max_column()).max()
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.max_column().into_iter().chain(b.max_column()).max()
            }
            Predicate::Not(p) => p.max_column(),
        }
    }

    /// Constants mentioned anywhere in the predicate.
    pub fn constants(&self) -> BTreeSet<Constant> {
        match self {
            Predicate::True | Predicate::False => BTreeSet::new(),
            Predicate::Eq(a, b) | Predicate::NotEq(a, b) => {
                let mut s = a.constants();
                s.extend(b.constants());
                s
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                let mut s = a.constants();
                s.extend(b.constants());
                s
            }
            Predicate::Not(p) => p.constants(),
        }
    }

    /// Evaluates the predicate on a tuple of a **complete** database (or under
    /// naïve evaluation, where nulls are treated as ordinary values and
    /// equality is syntactic).
    pub fn eval_naive(&self, tuple: &Tuple) -> bool {
        self.eval_naive_on(&|i| &tuple[i])
    }

    /// [`Predicate::eval_naive`] over a *virtual* row: `at` maps a column
    /// index to its value in place. The columnar executor evaluates
    /// predicates directly against batch columns (and against the
    /// unmaterialized concatenation of a join's build and probe rows)
    /// through this accessor — no tuple is built and no value is cloned.
    pub fn eval_naive_on<'a, F: Fn(usize) -> &'a Value>(&self, at: &F) -> bool {
        match self {
            Predicate::True => true,
            Predicate::False => false,
            Predicate::Eq(a, b) => operand_eq_syntactic(a, b, at),
            Predicate::NotEq(a, b) => !operand_eq_syntactic(a, b, at),
            Predicate::And(a, b) => a.eval_naive_on(at) && b.eval_naive_on(at),
            Predicate::Or(a, b) => a.eval_naive_on(at) || b.eval_naive_on(at),
            Predicate::Not(p) => !p.eval_naive_on(at),
        }
    }

    /// Evaluates the predicate under SQL's three-valued logic: any comparison
    /// touching a null is `Unknown`, and `Unknown` propagates through the
    /// Kleene connectives.
    pub fn eval_3vl(&self, tuple: &Tuple) -> relmodel::value::Truth {
        use relmodel::value::Truth;
        match self {
            Predicate::True => Truth::True,
            Predicate::False => Truth::False,
            Predicate::Eq(a, b) => a.resolve(tuple).eq_3vl(&b.resolve(tuple)),
            Predicate::NotEq(a, b) => a.resolve(tuple).eq_3vl(&b.resolve(tuple)).not(),
            Predicate::And(a, b) => a.eval_3vl(tuple).and(b.eval_3vl(tuple)),
            Predicate::Or(a, b) => a.eval_3vl(tuple).or(b.eval_3vl(tuple)),
            Predicate::Not(p) => p.eval_3vl(tuple).not(),
        }
    }

    /// Three-valued evaluation **aware of marked-null identity**: comparing a
    /// marked null with *itself* is certainly `True` (every valuation sends it
    /// to one value), while any other comparison touching a null is `Unknown`.
    ///
    /// This sits strictly between [`Predicate::eval_naive`] (which also calls
    /// *distinct* nulls unequal) and [`Predicate::eval_3vl`] (which forgets
    /// null identity entirely): its `True`s hold in every valuation and its
    /// `False`s fail in every valuation, which is what the certain⁺/possible?
    /// approximation evaluators need.
    pub fn eval_3vl_marked(&self, tuple: &Tuple) -> relmodel::value::Truth {
        self.eval_3vl_marked_on(&|i| &tuple[i])
    }

    /// [`Predicate::eval_3vl_marked`] over a virtual row, as in
    /// [`Predicate::eval_naive_on`]: the certain⁺/possible? columnar
    /// operators re-check candidate pairs through this accessor without
    /// materializing the concatenated row.
    pub fn eval_3vl_marked_on<'a, F: Fn(usize) -> &'a Value>(
        &self,
        at: &F,
    ) -> relmodel::value::Truth {
        use relmodel::value::Truth;
        match self {
            Predicate::True => Truth::True,
            Predicate::False => Truth::False,
            Predicate::Eq(a, b) => operand_eq_marked(a, b, at),
            Predicate::NotEq(a, b) => operand_eq_marked(a, b, at).not(),
            Predicate::And(a, b) => a.eval_3vl_marked_on(at).and(b.eval_3vl_marked_on(at)),
            Predicate::Or(a, b) => a.eval_3vl_marked_on(at).or(b.eval_3vl_marked_on(at)),
            Predicate::Not(p) => p.eval_3vl_marked_on(at).not(),
        }
    }

    /// Shifts every column reference by `offset`; used when a predicate
    /// written against one operand of a product must apply to the
    /// concatenated tuple.
    pub fn shift_columns(&self, offset: usize) -> Predicate {
        self.map_columns(&|i| i + offset)
    }

    /// Rewrites every column reference through `f`; the physical-plan
    /// rewrites use this to move predicates across projections and products
    /// (e.g. un-shifting a conjunct pushed to the right operand of a
    /// product, or routing a predicate through a projection's column list).
    pub fn map_columns(&self, f: &impl Fn(usize) -> usize) -> Predicate {
        let map_op = |o: &Operand| match o {
            Operand::Column(i) => Operand::Column(f(*i)),
            c => c.clone(),
        };
        match self {
            Predicate::True => Predicate::True,
            Predicate::False => Predicate::False,
            Predicate::Eq(a, b) => Predicate::Eq(map_op(a), map_op(b)),
            Predicate::NotEq(a, b) => Predicate::NotEq(map_op(a), map_op(b)),
            Predicate::And(a, b) => {
                Predicate::And(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Or(a, b) => {
                Predicate::Or(Box::new(a.map_columns(f)), Box::new(b.map_columns(f)))
            }
            Predicate::Not(p) => Predicate::Not(Box::new(p.map_columns(f))),
        }
    }

    /// All column indices mentioned anywhere in the predicate. The
    /// physical-plan rewrites use this to decide which operand of a product
    /// a conjunct can be pushed into.
    pub fn columns(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        let op = |o: &Operand, out: &mut BTreeSet<usize>| {
            if let Operand::Column(i) = o {
                out.insert(*i);
            }
        };
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Eq(a, b) | Predicate::NotEq(a, b) => {
                op(a, out);
                op(b, out);
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Predicate::Not(p) => p.collect_columns(out),
        }
    }

    /// Splits the predicate into its top-level conjuncts (flattening nested
    /// `And`s); a predicate without `And` is a single conjunct. `True` has
    /// no conjuncts. The inverse of folding with [`Predicate::and`].
    pub fn conjuncts(&self) -> Vec<Predicate> {
        let mut out = Vec::new();
        self.collect_conjuncts(&mut out);
        out
    }

    fn collect_conjuncts(&self, out: &mut Vec<Predicate>) {
        match self {
            Predicate::True => {}
            Predicate::And(a, b) => {
                a.collect_conjuncts(out);
                b.collect_conjuncts(out);
            }
            other => out.push(other.clone()),
        }
    }

    /// Folds conjuncts back into one predicate (empty list ⇒ `True`).
    pub fn conjoin(conjuncts: impl IntoIterator<Item = Predicate>) -> Predicate {
        let mut iter = conjuncts.into_iter();
        match iter.next() {
            None => Predicate::True,
            Some(first) => iter.fold(first, Predicate::and),
        }
    }
}

/// Syntactic equality of two resolved operands, borrow-only: a column reads
/// through the accessor, a constant compares in place.
fn operand_eq_syntactic<'a, F: Fn(usize) -> &'a Value>(a: &Operand, b: &Operand, at: &F) -> bool {
    match (a, b) {
        (Operand::Column(i), Operand::Column(j)) => at(*i) == at(*j),
        (Operand::Column(i), Operand::Const(c)) | (Operand::Const(c), Operand::Column(i)) => {
            matches!(at(*i), Value::Const(x) if x == c)
        }
        (Operand::Const(x), Operand::Const(y)) => x == y,
    }
}

/// Marked-null three-valued equality of two resolved operands, borrow-only:
/// syntactically equal values (same constant or the *same* null) are `True`,
/// distinct constants are `False`, anything else involves a null whose value
/// depends on the valuation.
fn operand_eq_marked<'a, F: Fn(usize) -> &'a Value>(
    a: &Operand,
    b: &Operand,
    at: &F,
) -> relmodel::value::Truth {
    use relmodel::value::Truth;
    let is_const = |o: &Operand| match o {
        Operand::Column(i) => at(*i).is_const(),
        Operand::Const(_) => true,
    };
    if operand_eq_syntactic(a, b, at) {
        Truth::True
    } else if is_const(a) && is_const(b) {
        Truth::False
    } else {
        Truth::Unknown
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::True => write!(f, "true"),
            Predicate::False => write!(f, "false"),
            Predicate::Eq(a, b) => write!(f, "{a} = {b}"),
            Predicate::NotEq(a, b) => write!(f, "{a} <> {b}"),
            Predicate::And(a, b) => write!(f, "({a} AND {b})"),
            Predicate::Or(a, b) => write!(f, "({a} OR {b})"),
            Predicate::Not(p) => write!(f, "NOT ({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::value::Truth;

    #[test]
    fn positivity() {
        let p = Predicate::eq(Operand::col(0), Operand::int(1));
        assert!(p.is_positive());
        assert!(p.clone().and(Predicate::True).is_positive());
        assert!(p.clone().or(p.clone()).is_positive());
        assert!(!p.clone().negate().is_positive());
        assert!(!Predicate::neq(Operand::col(0), Operand::int(1)).is_positive());
        assert!(!Predicate::False.is_positive());
    }

    #[test]
    fn max_column_and_constants() {
        let p = Predicate::eq(Operand::col(2), Operand::str("x"))
            .and(Predicate::neq(Operand::col(5), Operand::int(3)));
        assert_eq!(p.max_column(), Some(5));
        assert_eq!(p.constants().len(), 2);
        assert_eq!(Predicate::True.max_column(), None);
    }

    #[test]
    fn naive_evaluation_is_syntactic() {
        let t = Tuple::new(vec![Value::null(0), Value::null(0), Value::null(1)]);
        let same_null = Predicate::eq(Operand::col(0), Operand::col(1));
        let diff_null = Predicate::eq(Operand::col(0), Operand::col(2));
        assert!(
            same_null.eval_naive(&t),
            "the same marked null is equal to itself"
        );
        assert!(
            !diff_null.eval_naive(&t),
            "distinct nulls are not naively equal"
        );
    }

    #[test]
    fn three_valued_evaluation_is_unknown_on_nulls() {
        let t = Tuple::new(vec![Value::null(0), Value::int(1)]);
        let p = Predicate::eq(Operand::col(0), Operand::col(1));
        assert_eq!(p.eval_3vl(&t), Truth::Unknown);
        let q = Predicate::eq(Operand::col(1), Operand::int(1));
        assert_eq!(q.eval_3vl(&t), Truth::True);
        // Tautology from the paper: col0 = 'oid1' OR col0 <> 'oid1' is Unknown on a null.
        let taut = Predicate::eq(Operand::col(0), Operand::str("oid1"))
            .or(Predicate::neq(Operand::col(0), Operand::str("oid1")));
        assert_eq!(taut.eval_3vl(&t), Truth::Unknown);
        assert!(
            taut.eval_naive(&t),
            "naïve evaluation sees the tautology as true"
        );
    }

    #[test]
    fn marked_three_valued_evaluation_knows_null_identity() {
        let t = Tuple::new(vec![
            Value::null(0),
            Value::null(0),
            Value::null(1),
            Value::int(1),
        ]);
        let same = Predicate::eq(Operand::col(0), Operand::col(1));
        assert_eq!(
            same.eval_3vl_marked(&t),
            Truth::True,
            "⊥0 = ⊥0 certainly holds"
        );
        assert_eq!(same.negate().eval_3vl_marked(&t), Truth::False);
        let cross = Predicate::eq(Operand::col(0), Operand::col(2));
        assert_eq!(
            cross.eval_3vl_marked(&t),
            Truth::Unknown,
            "⊥0 = ⊥1 depends on the valuation"
        );
        let vs_const = Predicate::eq(Operand::col(0), Operand::col(3));
        assert_eq!(vs_const.eval_3vl_marked(&t), Truth::Unknown);
        let consts = Predicate::eq(Operand::col(3), Operand::int(1));
        assert_eq!(consts.eval_3vl_marked(&t), Truth::True);
        assert_eq!(
            Predicate::eq(Operand::col(3), Operand::int(2)).eval_3vl_marked(&t),
            Truth::False
        );
    }

    #[test]
    fn accessor_evaluation_agrees_with_tuple_evaluation() {
        // A virtual concatenated row, as the columnar join sees it: two
        // separate value stores behind one accessor.
        let left = [Value::int(1), Value::null(0)];
        let right = [Value::null(0), Value::int(2)];
        let at = |i: usize| {
            if i < 2 {
                &left[i]
            } else {
                &right[i - 2]
            }
        };
        let concat = Tuple::new(vec![
            Value::int(1),
            Value::null(0),
            Value::null(0),
            Value::int(2),
        ]);
        let cases = [
            Predicate::eq(Operand::col(1), Operand::col(2)),
            Predicate::eq(Operand::col(0), Operand::col(3)),
            Predicate::neq(Operand::col(0), Operand::int(1)),
            Predicate::eq(Operand::col(3), Operand::int(2))
                .and(Predicate::eq(Operand::col(1), Operand::col(2))),
            Predicate::eq(Operand::str("x"), Operand::str("x"))
                .or(Predicate::eq(Operand::col(0), Operand::col(1))),
            Predicate::eq(Operand::col(0), Operand::col(2)).negate(),
            Predicate::False,
        ];
        for p in cases {
            assert_eq!(p.eval_naive_on(&at), p.eval_naive(&concat), "naive {p}");
            assert_eq!(
                p.eval_3vl_marked_on(&at),
                p.eval_3vl_marked(&concat),
                "marked {p}"
            );
        }
    }

    #[test]
    fn shift_columns() {
        let p = Predicate::eq(Operand::col(0), Operand::col(1))
            .and(Predicate::neq(Operand::col(2), Operand::int(5)));
        let shifted = p.shift_columns(3);
        assert_eq!(shifted.max_column(), Some(5));
        let t = Tuple::ints(&[9, 9, 9, 7, 7, 4]);
        assert!(shifted.eval_naive(&t));
    }

    #[test]
    fn display() {
        let p = Predicate::eq(Operand::col(0), Operand::str("a")).or(Predicate::True.negate());
        assert_eq!(p.to_string(), "(#0 = a OR NOT (true))");
    }

    #[test]
    fn columns_collects_every_reference() {
        let p = Predicate::eq(Operand::col(0), Operand::col(3))
            .and(Predicate::neq(Operand::col(1), Operand::int(5)).negate());
        assert_eq!(p.columns().into_iter().collect::<Vec<_>>(), vec![0, 1, 3]);
        assert!(Predicate::True.columns().is_empty());
    }

    #[test]
    fn conjuncts_round_trip() {
        let a = Predicate::eq(Operand::col(0), Operand::int(1));
        let b = Predicate::neq(Operand::col(1), Operand::int(2));
        let c = Predicate::eq(Operand::col(2), Operand::col(3)).or(Predicate::True);
        let p = a.clone().and(b.clone()).and(c.clone());
        assert_eq!(p.conjuncts(), vec![a.clone(), b.clone(), c.clone()]);
        assert_eq!(Predicate::conjoin(p.conjuncts()), p);
        assert_eq!(Predicate::True.conjuncts(), Vec::<Predicate>::new());
        assert_eq!(Predicate::conjoin(Vec::new()), Predicate::True);
        // An `Or` is one conjunct, not two.
        assert_eq!(c.conjuncts().len(), 1);
    }

    #[test]
    fn map_columns_rewrites_through_a_projection() {
        // σ over π[2,0]: predicate column i refers to projection output i,
        // which reads input column cols[i].
        let cols = [2usize, 0usize];
        let p = Predicate::eq(Operand::col(0), Operand::col(1));
        let pushed = p.map_columns(&|i| cols[i]);
        assert_eq!(pushed.to_string(), "#2 = #0");
        let t = Tuple::ints(&[7, 8, 7]);
        assert!(pushed.eval_naive(&t));
    }
}
