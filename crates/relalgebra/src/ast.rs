//! Relational algebra expressions.
//!
//! Attributes are positional (0-based column indices); the textual query
//! language in the `qparser` crate maps named attributes onto positions.
//!
//! The operator set covers full relational algebra as used by the paper:
//! selection, projection, cartesian product, union, difference, intersection,
//! the derived *division* operator (which the paper uses to characterise
//! `RA_cwa`), the active-domain diagonal `Δ = {(a,a) | a ∈ adom(D)}`, and
//! literal relations.

use std::collections::BTreeSet;
use std::fmt;

use relmodel::value::Constant;
use relmodel::Relation;

use crate::predicate::Predicate;

/// A relational algebra expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaExpr {
    /// A base relation of the schema, by name.
    Relation(String),
    /// A literal relation (constant table). May contain nulls, which makes it
    /// possible to write tableau-style fixed data inside queries in tests.
    Values(Relation),
    /// The active-domain diagonal `Δ = {(a,a) | a ∈ adom(D)}` of the input
    /// database. Definable in positive algebra; provided as a primitive
    /// because the `RA(Δ, π, ×, ∪)` class of divisor queries refers to it.
    Delta,
    /// Selection `σ_p(e)`.
    Select(Box<RaExpr>, Predicate),
    /// Projection `π_{cols}(e)` onto the listed columns, in the listed order.
    Project(Box<RaExpr>, Vec<usize>),
    /// Cartesian product `e₁ × e₂`.
    Product(Box<RaExpr>, Box<RaExpr>),
    /// Union `e₁ ∪ e₂` (operands must have equal arity).
    Union(Box<RaExpr>, Box<RaExpr>),
    /// Difference `e₁ − e₂` (operands must have equal arity).
    Difference(Box<RaExpr>, Box<RaExpr>),
    /// Intersection `e₁ ∩ e₂` (operands must have equal arity).
    Intersection(Box<RaExpr>, Box<RaExpr>),
    /// Division `e₁ ÷ e₂`: if `e₁` has arity `m + k` and `e₂` has arity `k`,
    /// the result has arity `m` and contains those `m`-tuples `t` such that
    /// `(t, s) ∈ e₁` for **every** `s ∈ e₂`.
    Divide(Box<RaExpr>, Box<RaExpr>),
}

impl RaExpr {
    /// A base relation reference.
    pub fn relation(name: impl Into<String>) -> Self {
        RaExpr::Relation(name.into())
    }

    /// A literal relation.
    pub fn values(relation: Relation) -> Self {
        RaExpr::Values(relation)
    }

    /// `σ_p(self)`.
    pub fn select(self, predicate: Predicate) -> Self {
        RaExpr::Select(Box::new(self), predicate)
    }

    /// `π_{cols}(self)`.
    pub fn project(self, columns: Vec<usize>) -> Self {
        RaExpr::Project(Box::new(self), columns)
    }

    /// `self × other`.
    pub fn product(self, other: RaExpr) -> Self {
        RaExpr::Product(Box::new(self), Box::new(other))
    }

    /// `self ∪ other`.
    pub fn union(self, other: RaExpr) -> Self {
        RaExpr::Union(Box::new(self), Box::new(other))
    }

    /// `self − other`.
    pub fn difference(self, other: RaExpr) -> Self {
        RaExpr::Difference(Box::new(self), Box::new(other))
    }

    /// `self ∩ other`.
    pub fn intersection(self, other: RaExpr) -> Self {
        RaExpr::Intersection(Box::new(self), Box::new(other))
    }

    /// `self ÷ other`.
    pub fn divide(self, other: RaExpr) -> Self {
        RaExpr::Divide(Box::new(self), Box::new(other))
    }

    /// An equi-join of `self` and `other` on pairs of columns
    /// `(left column, right column)`, expressed as a selection over a product
    /// (the standard derived form).
    pub fn equi_join(self, other: RaExpr, on: &[(usize, usize)], left_arity: usize) -> Self {
        let mut pred = Predicate::True;
        for (l, r) in on {
            let atom = Predicate::Eq(
                crate::predicate::Operand::Column(*l),
                crate::predicate::Operand::Column(left_arity + *r),
            );
            pred = if pred == Predicate::True {
                atom
            } else {
                pred.and(atom)
            };
        }
        self.product(other).select(pred)
    }

    /// Names of base relations mentioned anywhere in the expression.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let RaExpr::Relation(name) = e {
                out.insert(name.clone());
            }
        });
        out
    }

    /// Constants mentioned in predicates and literal relations of the
    /// expression — `Const(Q)`, needed to build an adequate valuation domain.
    pub fn constants(&self) -> BTreeSet<Constant> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| match e {
            RaExpr::Select(_, p) => out.extend(p.constants()),
            RaExpr::Values(rel) => out.extend(rel.constants()),
            _ => {}
        });
        out
    }

    /// Does the expression mention the `Δ` primitive?
    pub fn uses_delta(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(e, RaExpr::Delta) {
                found = true;
            }
        });
        found
    }

    /// Number of operator nodes in the expression (a rough size measure used
    /// in reports).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Applies `f` to every sub-expression, parents before children.
    pub fn visit(&self, f: &mut impl FnMut(&RaExpr)) {
        f(self);
        match self {
            RaExpr::Relation(_) | RaExpr::Values(_) | RaExpr::Delta => {}
            RaExpr::Select(e, _) | RaExpr::Project(e, _) => e.visit(f),
            RaExpr::Product(a, b)
            | RaExpr::Union(a, b)
            | RaExpr::Difference(a, b)
            | RaExpr::Intersection(a, b)
            | RaExpr::Divide(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }
}

impl fmt::Display for RaExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RaExpr::Relation(name) => write!(f, "{name}"),
            RaExpr::Values(rel) => write!(f, "VALUES{rel}"),
            RaExpr::Delta => write!(f, "Δ"),
            RaExpr::Select(e, p) => write!(f, "σ[{p}]({e})"),
            RaExpr::Project(e, cols) => {
                let cols: Vec<String> = cols.iter().map(|c| format!("#{c}")).collect();
                write!(f, "π[{}]({e})", cols.join(","))
            }
            RaExpr::Product(a, b) => write!(f, "({a} × {b})"),
            RaExpr::Union(a, b) => write!(f, "({a} ∪ {b})"),
            RaExpr::Difference(a, b) => write!(f, "({a} − {b})"),
            RaExpr::Intersection(a, b) => write!(f, "({a} ∩ {b})"),
            RaExpr::Divide(a, b) => write!(f, "({a} ÷ {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Operand;
    use relmodel::Tuple;

    #[test]
    fn builders_and_display() {
        let q = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![1]);
        assert_eq!(q.to_string(), "π[#1](σ[#0 = 1](R))");
        let u = RaExpr::relation("R").union(RaExpr::relation("S"));
        assert_eq!(u.to_string(), "(R ∪ S)");
        let d = RaExpr::relation("R").divide(RaExpr::relation("S"));
        assert_eq!(d.to_string(), "(R ÷ S)");
    }

    #[test]
    fn relation_and_constant_collection() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(0), Operand::str("x")))
            .difference(RaExpr::relation("R"));
        assert_eq!(q.relations().len(), 2);
        assert_eq!(q.constants().len(), 1);
        // nodes: difference, select, product, R, S, R
        assert_eq!(q.size(), 6);
    }

    #[test]
    fn values_and_delta() {
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[7])]));
        assert!(lit.constants().contains(&Constant::Int(7)));
        assert!(!lit.uses_delta());
        assert!(RaExpr::Delta.uses_delta());
        assert!(RaExpr::relation("R").divide(RaExpr::Delta).uses_delta());
    }

    #[test]
    fn equi_join_builds_selected_product() {
        // R(a,b) ⋈_{b = c} S(c,d)
        let j = RaExpr::relation("R").equi_join(RaExpr::relation("S"), &[(1, 0)], 2);
        match &j {
            RaExpr::Select(inner, p) => {
                assert!(matches!(**inner, RaExpr::Product(_, _)));
                assert_eq!(p.to_string(), "#1 = #2");
            }
            other => panic!("expected select over product, got {other}"),
        }
    }
}
