//! Unions of conjunctive queries (UCQ), and the translation between positive
//! relational algebra and UCQ.
//!
//! The positive fragment of relational algebra (σ, π, ×, ∪, ∩ with positive
//! conditions) has exactly the expressive power of UCQ; the paper's
//! naïve-evaluation result for OWA is stated for this class. The translation
//! implemented here ([`UnionOfCq::from_positive_ra`]) is used by the tests and
//! benchmarks to move between the algebraic and the logical view, and
//! [`UnionOfCq::to_ra_expr`] goes back, so equivalences can be checked by
//! evaluation.

use std::collections::BTreeMap;
use std::fmt;

use relmodel::value::Constant;
use relmodel::Schema;

use crate::ast::RaExpr;
use crate::cq::{Atom, ConjunctiveQuery, Term};
use crate::predicate::{Operand, Predicate};

/// A union of conjunctive queries, all of the same arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnionOfCq {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

/// Errors raised when translating relational algebra to UCQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslationError {
    /// The expression is not in the positive fragment (contains difference,
    /// division, or a non-positive predicate).
    NotPositive(String),
    /// A base relation is missing from the schema.
    UnknownRelation(String),
}

impl fmt::Display for TranslationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslationError::NotPositive(what) => {
                write!(f, "expression is not positive relational algebra: {what}")
            }
            TranslationError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
        }
    }
}

impl std::error::Error for TranslationError {}

impl UnionOfCq {
    /// Creates a UCQ from disjuncts.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> Self {
        UnionOfCq { disjuncts }
    }

    /// A UCQ with a single disjunct.
    pub fn single(cq: ConjunctiveQuery) -> Self {
        UnionOfCq {
            disjuncts: vec![cq],
        }
    }

    /// Output arity (0 if there are no disjuncts).
    pub fn arity(&self) -> usize {
        self.disjuncts.first().map_or(0, ConjunctiveQuery::arity)
    }

    /// Number of disjuncts.
    pub fn len(&self) -> usize {
        self.disjuncts.len()
    }

    /// Is the union empty (the constantly-empty query)?
    pub fn is_empty(&self) -> bool {
        self.disjuncts.is_empty()
    }

    /// Constants mentioned anywhere in the UCQ.
    pub fn constants(&self) -> std::collections::BTreeSet<Constant> {
        self.disjuncts.iter().flat_map(|q| q.constants()).collect()
    }

    /// UCQ containment: `self ⊆ other` iff every disjunct of `self` is
    /// contained in some disjunct of `other` (sound and complete for UCQs).
    pub fn contained_in(&self, other: &UnionOfCq) -> bool {
        self.disjuncts
            .iter()
            .all(|q| other.disjuncts.iter().any(|p| q.contained_in(p)))
    }

    /// UCQ equivalence (mutual containment).
    pub fn equivalent_to(&self, other: &UnionOfCq) -> bool {
        self.contained_in(other) && other.contained_in(self)
    }

    /// Removes disjuncts that are contained in another disjunct (a cheap
    /// equivalence-preserving simplification).
    pub fn simplify(&self) -> UnionOfCq {
        let mut kept: Vec<ConjunctiveQuery> = Vec::new();
        for (i, q) in self.disjuncts.iter().enumerate() {
            let redundant = self.disjuncts.iter().enumerate().any(|(j, p)| {
                if i == j {
                    return false;
                }
                // keep the earlier of two equivalent disjuncts
                q.contained_in(p) && (!p.contained_in(q) || j < i)
            });
            if !redundant {
                kept.push(q.clone());
            }
        }
        UnionOfCq { disjuncts: kept }
    }

    /// Translates a **positive** relational algebra expression into an
    /// equivalent UCQ. Fails with [`TranslationError::NotPositive`] if the
    /// expression uses difference, division, or non-positive predicates.
    pub fn from_positive_ra(expr: &RaExpr, schema: &Schema) -> Result<UnionOfCq, TranslationError> {
        translate(expr, schema).map(|disjuncts| UnionOfCq { disjuncts })
    }

    /// Converts the UCQ back into a relational algebra expression
    /// (a union of select-project-product blocks). Disjuncts with an empty
    /// body become literal relations and therefore must have constant heads.
    pub fn to_ra_expr(&self) -> Result<RaExpr, TranslationError> {
        let mut exprs: Vec<RaExpr> = Vec::new();
        for cq in &self.disjuncts {
            exprs.push(cq_to_ra(cq)?);
        }
        let mut iter = exprs.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| TranslationError::NotPositive("empty union".to_owned()))?;
        Ok(iter.fold(first, |acc, e| acc.union(e)))
    }
}

impl fmt::Display for UnionOfCq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, q) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, "  ∪  ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

/// Converts a positive predicate into disjunctive normal form: a disjunction
/// (outer `Vec`) of conjunctions (inner `Vec`) of equality atoms.
fn positive_dnf(p: &Predicate) -> Result<Vec<Vec<(Operand, Operand)>>, TranslationError> {
    match p {
        Predicate::True => Ok(vec![vec![]]),
        Predicate::Eq(a, b) => Ok(vec![vec![(a.clone(), b.clone())]]),
        Predicate::And(a, b) => {
            let da = positive_dnf(a)?;
            let db = positive_dnf(b)?;
            let mut out = Vec::new();
            for ca in &da {
                for cb in &db {
                    let mut c = ca.clone();
                    c.extend(cb.iter().cloned());
                    out.push(c);
                }
            }
            Ok(out)
        }
        Predicate::Or(a, b) => {
            let mut out = positive_dnf(a)?;
            out.extend(positive_dnf(b)?);
            Ok(out)
        }
        Predicate::False | Predicate::NotEq(_, _) | Predicate::Not(_) => {
            Err(TranslationError::NotPositive(format!("predicate {p}")))
        }
    }
}

/// Imposes the equality `t1 = t2` on a CQ by unification: substitutes a
/// variable by the other term, or drops the CQ (returns `None`) if two
/// distinct constants are equated.
fn apply_equality(cq: ConjunctiveQuery, t1: &Term, t2: &Term) -> Option<ConjunctiveQuery> {
    if t1 == t2 {
        return Some(cq);
    }
    match (t1, t2) {
        (Term::Var(v), other) | (other, Term::Var(v)) => {
            let mut subst = BTreeMap::new();
            subst.insert(*v, other.clone());
            Some(cq.substitute(&subst))
        }
        (Term::Const(_), Term::Const(_)) => None,
    }
}

fn resolve_operand(op: &Operand, head: &[Term]) -> Term {
    match op {
        Operand::Column(i) => head[*i].clone(),
        Operand::Const(c) => Term::Const(c.clone()),
    }
}

fn translate(expr: &RaExpr, schema: &Schema) -> Result<Vec<ConjunctiveQuery>, TranslationError> {
    match expr {
        RaExpr::Relation(name) => {
            let rs = schema
                .relation(name)
                .ok_or_else(|| TranslationError::UnknownRelation(name.clone()))?;
            let vars: Vec<Term> = (0..rs.arity() as u64).map(Term::Var).collect();
            Ok(vec![ConjunctiveQuery::new(
                vars.clone(),
                vec![Atom::new(name.clone(), vars)],
            )])
        }
        RaExpr::Values(rel) => Ok(rel
            .iter()
            .map(|t| {
                let head: Vec<Term> = t
                    .values()
                    .iter()
                    .map(|v| match v {
                        relmodel::Value::Const(c) => Term::Const(c.clone()),
                        relmodel::Value::Null(n) => Term::Var(n.0),
                    })
                    .collect();
                ConjunctiveQuery::new(head, Vec::new())
            })
            .collect()),
        RaExpr::Delta => {
            // Δ = {(a,a) | a ∈ adom(D)}: one disjunct per relation and position.
            let mut out = Vec::new();
            for rs in schema.iter() {
                for pos in 0..rs.arity() {
                    let vars: Vec<Term> = (0..rs.arity() as u64).map(Term::Var).collect();
                    let head = vec![vars[pos].clone(), vars[pos].clone()];
                    out.push(ConjunctiveQuery::new(
                        head,
                        vec![Atom::new(rs.name.clone(), vars)],
                    ));
                }
            }
            Ok(out)
        }
        RaExpr::Select(e, p) => {
            let inner = translate(e, schema)?;
            let dnf = positive_dnf(p)?;
            let mut out = Vec::new();
            for cq in &inner {
                for conjunct in &dnf {
                    let mut current = Some(cq.clone());
                    for (a, b) in conjunct {
                        current = current.and_then(|c| {
                            let ta = resolve_operand(a, &c.head);
                            let tb = resolve_operand(b, &c.head);
                            apply_equality(c, &ta, &tb)
                        });
                    }
                    if let Some(c) = current {
                        out.push(c);
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Project(e, cols) => {
            let inner = translate(e, schema)?;
            Ok(inner
                .into_iter()
                .map(|cq| {
                    let head = cols.iter().map(|&c| cq.head[c].clone()).collect();
                    ConjunctiveQuery::new(head, cq.body)
                })
                .collect())
        }
        RaExpr::Product(a, b) => {
            let left = translate(a, schema)?;
            let right = translate(b, schema)?;
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    let offset = l.max_var().map_or(0, |m| m + 1);
                    let r = r.shift_vars(offset);
                    let mut head = l.head.clone();
                    head.extend(r.head.iter().cloned());
                    let mut body = l.body.clone();
                    body.extend(r.body);
                    out.push(ConjunctiveQuery::new(head, body));
                }
            }
            Ok(out)
        }
        RaExpr::Union(a, b) => {
            let mut out = translate(a, schema)?;
            out.extend(translate(b, schema)?);
            Ok(out)
        }
        RaExpr::Intersection(a, b) => {
            let left = translate(a, schema)?;
            let right = translate(b, schema)?;
            let mut out = Vec::new();
            for l in &left {
                for r in &right {
                    let offset = l.max_var().map_or(0, |m| m + 1);
                    let r = r.shift_vars(offset);
                    let mut body = l.body.clone();
                    body.extend(r.body.clone());
                    let mut current = Some(ConjunctiveQuery::new(l.head.clone(), body));
                    for (lt, rt) in l.head.iter().zip(r.head.iter()) {
                        current = current.and_then(|c| apply_equality(c, lt, rt));
                    }
                    if let Some(c) = current {
                        out.push(c);
                    }
                }
            }
            Ok(out)
        }
        RaExpr::Difference(_, _) => Err(TranslationError::NotPositive(
            "difference operator".to_owned(),
        )),
        RaExpr::Divide(_, _) => Err(TranslationError::NotPositive(
            "division operator".to_owned(),
        )),
    }
}

/// Converts a single CQ to a select-project-product relational algebra block.
fn cq_to_ra(cq: &ConjunctiveQuery) -> Result<RaExpr, TranslationError> {
    if cq.body.is_empty() {
        // Constant answer: the head must be fully constant.
        let values: Option<Vec<relmodel::Value>> = cq
            .head
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(relmodel::Value::Const(c.clone())),
                Term::Var(_) => None,
            })
            .collect();
        let values = values.ok_or_else(|| {
            TranslationError::NotPositive("unsafe disjunct: variable head with empty body".into())
        })?;
        let arity = values.len();
        return Ok(RaExpr::values(relmodel::Relation::from_tuples(
            arity,
            vec![relmodel::Tuple::new(values)],
        )));
    }
    // Product of the body relations, in order.
    let mut expr: Option<RaExpr> = None;
    let mut var_positions: BTreeMap<u64, usize> = BTreeMap::new();
    let mut predicate = Predicate::True;
    let mut offset = 0usize;
    for atom in &cq.body {
        let rel = RaExpr::relation(atom.relation.clone());
        expr = Some(match expr {
            None => rel,
            Some(e) => e.product(rel),
        });
        for (i, term) in atom.terms.iter().enumerate() {
            let col = offset + i;
            match term {
                Term::Const(c) => {
                    let atom_pred = Predicate::eq(Operand::Column(col), Operand::Const(c.clone()));
                    predicate = and(predicate, atom_pred);
                }
                Term::Var(v) => match var_positions.get(v) {
                    Some(&first) => {
                        let atom_pred = Predicate::eq(Operand::Column(first), Operand::Column(col));
                        predicate = and(predicate, atom_pred);
                    }
                    None => {
                        var_positions.insert(*v, col);
                    }
                },
            }
        }
        offset += atom.terms.len();
    }
    let expr = expr.expect("nonempty body");
    let selected = expr.select(predicate);
    // Projection columns from the head.
    let mut cols = Vec::with_capacity(cq.head.len());
    let mut extra_predicates: Vec<(usize, Constant)> = Vec::new();
    for t in &cq.head {
        match t {
            Term::Var(v) => {
                let pos = var_positions.get(v).ok_or_else(|| {
                    TranslationError::NotPositive(format!("unsafe head variable x{v}"))
                })?;
                cols.push(*pos);
            }
            Term::Const(c) => {
                // Constant head column: project any column and pin it — simplest
                // correct encoding is to add the constant via a one-tuple product.
                extra_predicates.push((cols.len(), c.clone()));
                cols.push(usize::MAX); // placeholder resolved below
            }
        }
    }
    if extra_predicates.is_empty() {
        return Ok(selected.project(cols));
    }
    // Append a literal single-tuple relation carrying the constant head
    // columns, then project from it.
    let consts: Vec<relmodel::Value> = extra_predicates
        .iter()
        .map(|(_, c)| relmodel::Value::Const(c.clone()))
        .collect();
    let lit = RaExpr::values(relmodel::Relation::from_tuples(
        consts.len(),
        vec![relmodel::Tuple::new(consts)],
    ));
    let body_arity = offset;
    let with_consts = selected.product(lit);
    let mut const_idx = 0usize;
    let cols: Vec<usize> = cols
        .into_iter()
        .map(|c| {
            if c == usize::MAX {
                let col = body_arity + const_idx;
                const_idx += 1;
                col
            } else {
                c
            }
        })
        .collect();
    Ok(with_consts.project(cols))
}

fn and(a: Predicate, b: Predicate) -> Predicate {
    if a == Predicate::True {
        b
    } else if b == Predicate::True {
        a
    } else {
        a.and(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, QueryClass};
    use relmodel::Schema;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["a"])
            .build()
    }

    #[test]
    fn base_relation_translates_to_identity_cq() {
        let ucq = UnionOfCq::from_positive_ra(&RaExpr::relation("R"), &schema()).unwrap();
        assert_eq!(ucq.len(), 1);
        assert_eq!(ucq.arity(), 2);
        assert_eq!(ucq.disjuncts[0].body.len(), 1);
    }

    #[test]
    fn selection_with_constant_pins_variable() {
        let q = RaExpr::relation("R").select(Predicate::eq(Operand::col(0), Operand::int(1)));
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        assert_eq!(ucq.len(), 1);
        let cq = &ucq.disjuncts[0];
        assert_eq!(cq.head[0], Term::int(1));
        assert!(cq.constants().contains(&Constant::Int(1)));
    }

    #[test]
    fn disjunctive_selection_produces_two_disjuncts() {
        let p = Predicate::eq(Operand::col(0), Operand::int(1))
            .or(Predicate::eq(Operand::col(0), Operand::int(2)));
        let q = RaExpr::relation("R").select(p);
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        assert_eq!(ucq.len(), 2);
    }

    #[test]
    fn unsatisfiable_selection_is_dropped() {
        // σ[1 = 2](R) has no disjuncts.
        let p = Predicate::Eq(Operand::int(1), Operand::int(2));
        let q = RaExpr::relation("R").select(p);
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        assert!(ucq.is_empty());
    }

    #[test]
    fn join_as_product_plus_selection() {
        // π_b(σ[#1 = #2](R × S)) — join R.b with S.a.
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![1]);
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        assert_eq!(ucq.len(), 1);
        let cq = &ucq.disjuncts[0];
        assert_eq!(cq.arity(), 1);
        assert_eq!(cq.body.len(), 2);
        // the join variable is shared between the two atoms
        let shared: Vec<u64> = cq.body[0]
            .variables()
            .intersection(&cq.body[1].variables())
            .cloned()
            .collect();
        assert_eq!(shared.len(), 1);
    }

    #[test]
    fn union_and_intersection() {
        let u = RaExpr::relation("S").union(RaExpr::relation("S"));
        let ucq = UnionOfCq::from_positive_ra(&u, &schema()).unwrap();
        assert_eq!(ucq.len(), 2);
        assert_eq!(ucq.simplify().len(), 1, "identical disjuncts are merged");

        let i = RaExpr::relation("S").intersection(RaExpr::relation("S"));
        let ucq = UnionOfCq::from_positive_ra(&i, &schema()).unwrap();
        assert_eq!(ucq.len(), 1);
    }

    #[test]
    fn delta_expands_over_schema() {
        let ucq = UnionOfCq::from_positive_ra(&RaExpr::Delta, &schema()).unwrap();
        // R contributes two positions, S one.
        assert_eq!(ucq.len(), 3);
        assert!(ucq.disjuncts.iter().all(|q| q.arity() == 2));
    }

    #[test]
    fn non_positive_is_rejected() {
        let diff = RaExpr::relation("S").difference(RaExpr::relation("S"));
        assert!(UnionOfCq::from_positive_ra(&diff, &schema()).is_err());
        let div = RaExpr::relation("R").divide(RaExpr::relation("S"));
        assert!(UnionOfCq::from_positive_ra(&div, &schema()).is_err());
        let neg = RaExpr::relation("S").select(Predicate::neq(Operand::col(0), Operand::int(1)));
        assert!(UnionOfCq::from_positive_ra(&neg, &schema()).is_err());
    }

    #[test]
    fn ucq_containment_and_equivalence() {
        let s = UnionOfCq::from_positive_ra(&RaExpr::relation("S"), &schema()).unwrap();
        let s_union = UnionOfCq::from_positive_ra(
            &RaExpr::relation("S").union(
                RaExpr::relation("S").select(Predicate::eq(Operand::col(0), Operand::int(1))),
            ),
            &schema(),
        )
        .unwrap();
        // S ∪ σ[a=1](S) ≡ S
        assert!(s_union.contained_in(&s));
        assert!(s.contained_in(&s_union));
        assert!(s.equivalent_to(&s_union));
    }

    #[test]
    fn round_trip_to_ra_preserves_class() {
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)))
            .project(vec![0]);
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        let back = ucq.to_ra_expr().unwrap();
        assert_eq!(classify(&back), QueryClass::Positive);
        // Translating again yields an equivalent UCQ.
        let ucq2 = UnionOfCq::from_positive_ra(&back, &schema()).unwrap();
        assert!(ucq.equivalent_to(&ucq2));
    }

    #[test]
    fn constant_head_round_trip() {
        // σ[a=1](S) projected to the (constant) column.
        let q = RaExpr::relation("S")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![0]);
        let ucq = UnionOfCq::from_positive_ra(&q, &schema()).unwrap();
        assert_eq!(ucq.disjuncts[0].head[0], Term::int(1));
        let back = ucq.to_ra_expr().unwrap();
        let ucq2 = UnionOfCq::from_positive_ra(&back, &schema()).unwrap();
        assert!(ucq.equivalent_to(&ucq2));
    }

    #[test]
    fn display() {
        let ucq = UnionOfCq::from_positive_ra(
            &RaExpr::relation("S").union(RaExpr::relation("S")),
            &schema(),
        )
        .unwrap();
        assert!(ucq.to_string().contains("∪"));
    }
}
