//! # relalgebra — query languages over incomplete databases
//!
//! The query-language side of the reproduction of Libkin's PODS 2014 keynote.
//! It provides:
//!
//! * [`ast`] — relational algebra expressions (σ, π, ×, ∪, −, ∩, ÷, Δ and
//!   literal relations), with positional attributes;
//! * [`predicate`] — selection conditions: Boolean combinations of equality
//!   and inequality atoms over columns and constants;
//! * [`typecheck`] — arity checking of expressions against a schema;
//! * [`analysis`] — static analysis: a bottom-up abstract interpretation
//!   computing per-node monotonicity, groundness (null-free reach given a
//!   [`analysis::NullCensus`]), certainty-preservation and
//!   duplicate-sensitivity, plus the `QL…` lint framework built on it;
//! * [`classify`] — the fragments the paper's results speak about:
//!   positive relational algebra (= UCQ), `RA_cwa` (positive algebra plus
//!   division by a `RA(Δ,π,×,∪)` relation, = the logical class `Pos∀G`), and
//!   full relational algebra;
//! * [`cq`] / [`ucq`] — conjunctive queries with their tableau representation,
//!   homomorphism-based containment, and unions of conjunctive queries,
//!   together with a translation from positive algebra expressions to UCQ;
//! * [`fo`] — first-order formulas (relational calculus) with free variables,
//!   used for positive diagrams and the `Pos∀G` fragment;
//! * [`diagram`] — the logical-theory view of an incomplete database
//!   (Section 4 of the paper): `δ_D` under OWA (`∃x̄ PosDiag(D)`) and under
//!   CWA (the diagram plus domain-closure guards);
//! * [`physical`] — physical query plans: join fusion (`σ(A×B)` → hash
//!   equi-join), selection/projection pushdown, and the `EXPLAIN` rendering;
//!   [`plan::PlannedQuery`] lowers once and every evaluator executes the
//!   same plan.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod classify;
pub mod cq;
pub mod diagram;
pub mod fo;
pub mod physical;
pub mod plan;
pub mod predicate;
pub mod typecheck;
pub mod ucq;

/// Commonly used items, for glob import.
pub mod prelude {
    pub use crate::analysis::{
        analyze, Analysis, Diagnostic, DiagnosticCode, NodeFacts, NullCensus,
    };
    pub use crate::ast::RaExpr;
    pub use crate::classify::{classify, QueryClass};
    pub use crate::cq::{Atom, ConjunctiveQuery, Term};
    pub use crate::diagram::{cwa_theory, positive_diagram};
    pub use crate::fo::Formula;
    pub use crate::physical::{PhysNode, PhysOp, PhysicalPlan};
    pub use crate::plan::PlannedQuery;
    pub use crate::predicate::{Operand, Predicate};
    pub use crate::typecheck::output_arity;
    pub use crate::ucq::UnionOfCq;
}

pub use ast::RaExpr;
pub use classify::QueryClass;
pub use cq::ConjunctiveQuery;
pub use fo::Formula;
pub use plan::PlannedQuery;
pub use predicate::Predicate;
pub use ucq::UnionOfCq;
