//! Physical query plans: the executable operator tree every evaluator runs.
//!
//! A [`PhysicalPlan`] is lowered from a (typechecked) [`crate::plan::PlannedQuery`]
//! expression and rewritten for execution:
//!
//! * **Join fusion** — `σ(A × B)` with cross-operand equality conjuncts
//!   becomes a [`PhysOp::HashJoin`] with those conjuncts as equi-join keys
//!   and the remainder as a residual predicate, turning the interpreter's
//!   `O(|A|·|B|)` Cartesian loop into a build/probe hash join.
//! * **Selection pushdown** — filters merge with adjacent filters and move
//!   through projections, unions, products (operand-local conjuncts land on
//!   the operand), and the left operand of difference/intersection, so rows
//!   are dropped as early as possible.
//! * **Projection pushdown** — adjacent projections compose, projections
//!   distribute over unions, and identity projections vanish.
//!
//! Every rewrite is valid under *all* evaluation models that run physical
//! plans — plain syntactic tuples (naïve/complete/worlds), the certain⁺/
//! possible? approximation pair, and condition-carrying c-table rows — which
//! is what lets `releval::exec` execute one plan shape under four strategies.
//! The rewrites only reassociate conjunctions and reorder row-local work;
//! they never change which atoms are evaluated against which row.
//!
//! [`PhysicalPlan::explain`] renders the plan as an indented operator tree
//! (the `EXPLAIN` view), which the engine surfaces in its reports and the
//! plan-snapshot tests lock.

use std::fmt;

use relmodel::{Relation, Schema};

use crate::ast::RaExpr;
use crate::predicate::{Operand, Predicate};
use crate::typecheck::{output_arity, TypeError};

/// A node of the physical operator tree: the operator plus its output arity
/// (annotated during lowering so rewrites and executors never re-derive it)
/// and a plan-unique node id (assigned in preorder after rewriting, for
/// trace/profile attribution — `EXPLAIN ANALYZE` joins per-node timings back
/// to the plan by this id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysNode {
    op: PhysOp,
    arity: usize,
    id: u32,
}

/// A physical operator. Children are boxed [`PhysNode`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysOp {
    /// Scan of a base relation by name.
    Scan(String),
    /// A literal relation.
    Values(Relation),
    /// The active-domain diagonal `Δ`; executors compute the domain once per
    /// execution and serve every `Delta` node from that cache.
    Delta,
    /// Row filter `σ[p]`.
    Filter {
        /// Input operator.
        input: Box<PhysNode>,
        /// The predicate rows must satisfy.
        predicate: Predicate,
    },
    /// Projection onto the listed columns, in the listed order.
    Project {
        /// Input operator.
        input: Box<PhysNode>,
        /// Output columns (indices into the input).
        columns: Vec<usize>,
    },
    /// Cartesian product (no usable equi-join key was found).
    NestedProduct {
        /// Left operator.
        left: Box<PhysNode>,
        /// Right operator.
        right: Box<PhysNode>,
    },
    /// Hash equi-join: build a hash table on one side's key columns, probe
    /// with the other's. `keys` pairs `(left column, right column)`; the
    /// residual predicate (if any) is evaluated on the concatenated row.
    HashJoin {
        /// Left (probe-side by convention; executors may swap) operator.
        left: Box<PhysNode>,
        /// Right operator.
        right: Box<PhysNode>,
        /// Equi-join key column pairs `(left, right)`.
        keys: Vec<(usize, usize)>,
        /// Leftover predicate on the concatenated row, in concat coordinates.
        residual: Option<Predicate>,
    },
    /// Set union.
    Union {
        /// Left operator.
        left: Box<PhysNode>,
        /// Right operator.
        right: Box<PhysNode>,
    },
    /// Set difference.
    Difference {
        /// Left operator.
        left: Box<PhysNode>,
        /// Right operator.
        right: Box<PhysNode>,
    },
    /// Set intersection.
    Intersect {
        /// Left operator.
        left: Box<PhysNode>,
        /// Right operator.
        right: Box<PhysNode>,
    },
    /// Relational division.
    Divide {
        /// Dividend operator.
        left: Box<PhysNode>,
        /// Divisor operator.
        right: Box<PhysNode>,
    },
}

impl PhysNode {
    /// The operator at this node.
    pub fn op(&self) -> &PhysOp {
        &self.op
    }

    /// The node's output arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The node's plan-unique id: preorder position in the **rewritten**
    /// plan, assigned by [`PhysicalPlan::lower_unchecked`]. Deterministic
    /// for a given query and schema, so equal plans carry equal ids.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// The node's direct children, left to right.
    pub fn children(&self) -> Vec<&PhysNode> {
        match &self.op {
            PhysOp::Scan(_) | PhysOp::Values(_) | PhysOp::Delta => Vec::new(),
            PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => vec![input],
            PhysOp::NestedProduct { left, right }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right }
            | PhysOp::Intersect { left, right }
            | PhysOp::Divide { left, right } => vec![left, right],
        }
    }

    fn new(op: PhysOp, arity: usize) -> Self {
        PhysNode { op, arity, id: 0 }
    }

    /// Preorder id assignment over the rewritten tree.
    fn assign_ids(&mut self, next: &mut u32) {
        self.id = *next;
        *next += 1;
        match &mut self.op {
            PhysOp::Scan(_) | PhysOp::Values(_) | PhysOp::Delta => {}
            PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => {
                input.assign_ids(next);
            }
            PhysOp::NestedProduct { left, right }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right }
            | PhysOp::Intersect { left, right }
            | PhysOp::Divide { left, right } => {
                left.assign_ids(next);
                right.assign_ids(next);
            }
        }
    }

    /// Number of operator nodes in the subtree rooted here.
    pub fn operator_count(&self) -> usize {
        1 + match &self.op {
            PhysOp::Scan(_) | PhysOp::Values(_) | PhysOp::Delta => 0,
            PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => input.operator_count(),
            PhysOp::NestedProduct { left, right }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::Union { left, right }
            | PhysOp::Difference { left, right }
            | PhysOp::Intersect { left, right }
            | PhysOp::Divide { left, right } => left.operator_count() + right.operator_count(),
        }
    }

    /// The one-line `EXPLAIN` label for this operator (no children, no
    /// indentation) — the exact strings the plain rendering has always used.
    pub fn op_label(&self) -> String {
        match &self.op {
            PhysOp::Scan(name) => format!("scan {name}"),
            PhysOp::Values(rel) => {
                format!("values [{} col(s), {} row(s)]", rel.arity(), rel.len())
            }
            PhysOp::Delta => "Δ".to_string(),
            PhysOp::Filter { predicate, .. } => format!("σ[{predicate}]"),
            PhysOp::Project { columns, .. } => {
                let cols: Vec<String> = columns.iter().map(|c| format!("#{c}")).collect();
                format!("π[{}]", cols.join(","))
            }
            PhysOp::NestedProduct { .. } => "×".to_string(),
            PhysOp::HashJoin { keys, residual, .. } => {
                let keys: Vec<String> =
                    keys.iter().map(|(l, r)| format!("l#{l} = r#{r}")).collect();
                match residual {
                    Some(p) => format!("hash-join [{}] residual σ[{p}]", keys.join(", ")),
                    None => format!("hash-join [{}]", keys.join(", ")),
                }
            }
            PhysOp::Union { .. } => "∪".to_string(),
            PhysOp::Difference { .. } => "−".to_string(),
            PhysOp::Intersect { .. } => "∩".to_string(),
            PhysOp::Divide { .. } => "÷".to_string(),
        }
    }

    fn render(
        &self,
        indent: usize,
        out: &mut String,
        annotate: &mut dyn FnMut(&PhysNode) -> Option<String>,
    ) {
        for _ in 0..indent {
            out.push_str("  ");
        }
        out.push_str(&self.op_label());
        if let Some(note) = annotate(self) {
            out.push(' ');
            out.push_str(&note);
        }
        out.push('\n');
        for child in self.children() {
            child.render(indent + 1, out, annotate);
        }
    }
}

/// A rewritten, executable operator tree for one query over one schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    root: PhysNode,
}

impl PhysicalPlan {
    /// Typechecks `expr` against `schema`, lowers it, and rewrites it.
    pub fn lower(expr: &RaExpr, schema: &Schema) -> Result<PhysicalPlan, TypeError> {
        output_arity(expr, schema)?;
        Ok(PhysicalPlan::lower_unchecked(expr, schema))
    }

    /// Lowers an expression already known to typecheck against `schema`
    /// (what [`crate::plan::PlannedQuery`] guarantees).
    pub fn lower_unchecked(expr: &RaExpr, schema: &Schema) -> PhysicalPlan {
        let mut root = optimize(translate(expr, schema));
        // Ids are assigned in preorder over the *rewritten* tree, so every
        // node carries a stable, plan-unique handle for profile attribution
        // and equal plans (same query, same schema) get equal ids.
        let mut next = 0u32;
        root.assign_ids(&mut next);
        PhysicalPlan { root }
    }

    /// The root operator.
    pub fn root(&self) -> &PhysNode {
        &self.root
    }

    /// The plan's output arity.
    pub fn arity(&self) -> usize {
        self.root.arity
    }

    /// Number of physical operators in the plan.
    pub fn operator_count(&self) -> usize {
        self.root.operator_count()
    }

    /// Does the plan contain a hash join (i.e. did join fusion fire)?
    pub fn has_hash_join(&self) -> bool {
        fn walk(node: &PhysNode) -> bool {
            match node.op() {
                PhysOp::HashJoin { .. } => true,
                PhysOp::Scan(_) | PhysOp::Values(_) | PhysOp::Delta => false,
                PhysOp::Filter { input, .. } | PhysOp::Project { input, .. } => walk(input),
                PhysOp::NestedProduct { left, right }
                | PhysOp::Union { left, right }
                | PhysOp::Difference { left, right }
                | PhysOp::Intersect { left, right }
                | PhysOp::Divide { left, right } => walk(left) || walk(right),
            }
        }
        walk(&self.root)
    }

    /// The indented `EXPLAIN` rendering of the operator tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.root.render(0, &mut out, &mut |_| None);
        out
    }

    /// The `EXPLAIN` rendering with a per-node annotation appended to each
    /// operator line (when `annotate` returns `Some`). This is the hook
    /// `EXPLAIN ANALYZE` uses to splice measured row counts and timings into
    /// the plan text: the callback receives each node (with its
    /// [`PhysNode::id`]) in render order and returns the suffix for its line.
    pub fn explain_annotated(
        &self,
        annotate: &mut dyn FnMut(&PhysNode) -> Option<String>,
    ) -> String {
        let mut out = String::new();
        self.root.render(0, &mut out, annotate);
        out
    }

    /// [`PhysicalPlan::explain`] followed by an execution-telemetry footer:
    /// each line of `footer` is rendered as a `-- ` comment below the plan
    /// tree. The executor crates use this to attach what actually happened
    /// (operators run, batches, ground/symbolic run sizes) to the plan text
    /// without this crate depending on their counter types.
    pub fn explain_with_footer(&self, footer: &str) -> String {
        let mut out = self.explain();
        for line in footer.lines() {
            out.push_str("-- ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

/// Direct (unoptimized) translation of the logical tree.
fn translate(expr: &RaExpr, schema: &Schema) -> PhysNode {
    match expr {
        RaExpr::Relation(name) => {
            let arity = schema
                .relation(name)
                .expect("type checker guarantees the relation exists")
                .arity();
            PhysNode::new(PhysOp::Scan(name.clone()), arity)
        }
        RaExpr::Values(rel) => PhysNode::new(PhysOp::Values(rel.clone()), rel.arity()),
        RaExpr::Delta => PhysNode::new(PhysOp::Delta, 2),
        RaExpr::Select(e, p) => {
            let input = translate(e, schema);
            let arity = input.arity;
            PhysNode::new(
                PhysOp::Filter {
                    input: Box::new(input),
                    predicate: p.clone(),
                },
                arity,
            )
        }
        RaExpr::Project(e, cols) => {
            let input = translate(e, schema);
            PhysNode::new(
                PhysOp::Project {
                    input: Box::new(input),
                    columns: cols.clone(),
                },
                cols.len(),
            )
        }
        RaExpr::Product(a, b) => {
            let left = translate(a, schema);
            let right = translate(b, schema);
            let arity = left.arity + right.arity;
            PhysNode::new(
                PhysOp::NestedProduct {
                    left: Box::new(left),
                    right: Box::new(right),
                },
                arity,
            )
        }
        RaExpr::Union(a, b) => binary(expr, a, b, schema),
        RaExpr::Difference(a, b) => binary(expr, a, b, schema),
        RaExpr::Intersection(a, b) => binary(expr, a, b, schema),
        RaExpr::Divide(a, b) => {
            let left = translate(a, schema);
            let right = translate(b, schema);
            let arity = left.arity - right.arity;
            PhysNode::new(
                PhysOp::Divide {
                    left: Box::new(left),
                    right: Box::new(right),
                },
                arity,
            )
        }
    }
}

fn binary(expr: &RaExpr, a: &RaExpr, b: &RaExpr, schema: &Schema) -> PhysNode {
    let left = Box::new(translate(a, schema));
    let right = Box::new(translate(b, schema));
    let arity = left.arity;
    let op = match expr {
        RaExpr::Union(_, _) => PhysOp::Union { left, right },
        RaExpr::Difference(_, _) => PhysOp::Difference { left, right },
        RaExpr::Intersection(_, _) => PhysOp::Intersect { left, right },
        _ => unreachable!("binary() is only called for set operators"),
    };
    PhysNode::new(op, arity)
}

/// Bottom-up rewriting: children first, then the local rules.
fn optimize(node: PhysNode) -> PhysNode {
    let arity = node.arity;
    let op = match node.op {
        PhysOp::Filter { input, predicate } => {
            return push_filter(optimize(*input), predicate);
        }
        PhysOp::Project { input, columns } => {
            return push_project(optimize(*input), columns);
        }
        PhysOp::NestedProduct { left, right } => PhysOp::NestedProduct {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        PhysOp::HashJoin {
            left,
            right,
            keys,
            residual,
        } => PhysOp::HashJoin {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
            keys,
            residual,
        },
        PhysOp::Union { left, right } => PhysOp::Union {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        PhysOp::Difference { left, right } => PhysOp::Difference {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        PhysOp::Intersect { left, right } => PhysOp::Intersect {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        PhysOp::Divide { left, right } => PhysOp::Divide {
            left: Box::new(optimize(*left)),
            right: Box::new(optimize(*right)),
        },
        leaf @ (PhysOp::Scan(_) | PhysOp::Values(_) | PhysOp::Delta) => leaf,
    };
    PhysNode::new(op, arity)
}

/// Pushes a filter into (already-optimized) `input`, fusing joins on the way.
fn push_filter(input: PhysNode, predicate: Predicate) -> PhysNode {
    if predicate == Predicate::True {
        return input;
    }
    let arity = input.arity;
    match input.op {
        // σ[p](σ[q](x)) = σ[p ∧ q](x): one pass over the rows.
        PhysOp::Filter {
            input: inner,
            predicate: q,
        } => push_filter(*inner, q.and(predicate)),
        // σ[p](π[cols](x)) = π[cols](σ[p′](x)) where p′ reads through cols.
        PhysOp::Project {
            input: inner,
            columns,
        } => {
            let mapped = predicate.map_columns(&|i| columns[i]);
            PhysNode::new(
                PhysOp::Project {
                    input: Box::new(push_filter(*inner, mapped)),
                    columns,
                },
                arity,
            )
        }
        // σ distributes over ∪.
        PhysOp::Union { left, right } => PhysNode::new(
            PhysOp::Union {
                left: Box::new(push_filter(*left, predicate.clone())),
                right: Box::new(push_filter(*right, predicate)),
            },
            arity,
        ),
        // σ[p](A − B) = σ[p](A) − B and σ[p](A ∩ B) = σ[p](A) ∩ B.
        PhysOp::Difference { left, right } => PhysNode::new(
            PhysOp::Difference {
                left: Box::new(push_filter(*left, predicate)),
                right,
            },
            arity,
        ),
        PhysOp::Intersect { left, right } => PhysNode::new(
            PhysOp::Intersect {
                left: Box::new(push_filter(*left, predicate)),
                right,
            },
            arity,
        ),
        // The join-fusion site: route operand-local conjuncts to the
        // operands, promote cross-operand equalities to hash keys.
        PhysOp::NestedProduct { left, right } => {
            fuse(*left, *right, Vec::new(), None, predicate, arity)
        }
        PhysOp::HashJoin {
            left,
            right,
            keys,
            residual,
        } => fuse(*left, *right, keys, residual, predicate, arity),
        other => PhysNode::new(
            PhysOp::Filter {
                input: Box::new(PhysNode::new(other, arity)),
                predicate,
            },
            arity,
        ),
    }
}

/// Splits `predicate` over a product/join of `left` and `right`: operand-
/// local conjuncts are pushed into the operands, cross-operand equality
/// atoms join `keys`, and everything else lands in the residual. Builds a
/// [`PhysOp::HashJoin`] when at least one key exists, a (possibly filtered)
/// [`PhysOp::NestedProduct`] otherwise.
fn fuse(
    left: PhysNode,
    right: PhysNode,
    mut keys: Vec<(usize, usize)>,
    residual: Option<Predicate>,
    predicate: Predicate,
    arity: usize,
) -> PhysNode {
    let la = left.arity;
    let mut left_push = Vec::new();
    let mut right_push = Vec::new();
    let mut rest = residual.map(|p| p.conjuncts()).unwrap_or_default();
    for conjunct in predicate.conjuncts() {
        let cols = conjunct.columns();
        if cols.is_empty() {
            rest.push(conjunct);
        } else if cols.iter().all(|&i| i < la) {
            left_push.push(conjunct);
        } else if cols.iter().all(|&i| i >= la) {
            right_push.push(conjunct.map_columns(&|i| i - la));
        } else if let Predicate::Eq(Operand::Column(i), Operand::Column(j)) = conjunct {
            // Exactly one side of the equality lives in each operand.
            if i < la {
                keys.push((i, j - la));
            } else {
                keys.push((j, i - la));
            }
        } else {
            rest.push(conjunct);
        }
    }
    let left = Box::new(if left_push.is_empty() {
        left
    } else {
        push_filter(left, Predicate::conjoin(left_push))
    });
    let right = Box::new(if right_push.is_empty() {
        right
    } else {
        push_filter(right, Predicate::conjoin(right_push))
    });
    let rest = if rest.is_empty() {
        None
    } else {
        Some(Predicate::conjoin(rest))
    };
    if keys.is_empty() {
        let product = PhysNode::new(PhysOp::NestedProduct { left, right }, arity);
        match rest {
            None => product,
            Some(predicate) => PhysNode::new(
                PhysOp::Filter {
                    input: Box::new(product),
                    predicate,
                },
                arity,
            ),
        }
    } else {
        PhysNode::new(
            PhysOp::HashJoin {
                left,
                right,
                keys,
                residual: rest,
            },
            arity,
        )
    }
}

/// Pushes a projection into (already-optimized) `input`.
fn push_project(input: PhysNode, columns: Vec<usize>) -> PhysNode {
    // π over the identity column list is a no-op.
    if columns.len() == input.arity && columns.iter().enumerate().all(|(i, &c)| i == c) {
        return input;
    }
    let arity = columns.len();
    match input.op {
        // π[a](π[b](x)) = π[b ∘ a](x).
        PhysOp::Project {
            input: inner,
            columns: inner_cols,
        } => {
            let composed: Vec<usize> = columns.iter().map(|&i| inner_cols[i]).collect();
            push_project(*inner, composed)
        }
        // π distributes over ∪.
        PhysOp::Union { left, right } => PhysNode::new(
            PhysOp::Union {
                left: Box::new(push_project(*left, columns.clone())),
                right: Box::new(push_project(*right, columns)),
            },
            arity,
        ),
        other => PhysNode::new(
            PhysOp::Project {
                input: Box::new(PhysNode::new(other, input.arity)),
                columns,
            },
            arity,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::Tuple;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["b", "c"])
            .relation("U", &["a"])
            .build()
    }

    fn lower(expr: &RaExpr) -> PhysicalPlan {
        PhysicalPlan::lower(expr, &schema()).unwrap()
    }

    #[test]
    fn select_over_product_fuses_into_hash_join() {
        // R(a,b) ⋈_{b = b'} S(b',c)
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        let plan = lower(&q);
        assert!(plan.has_hash_join());
        assert_eq!(plan.arity(), 4);
        assert_eq!(
            plan.explain(),
            "hash-join [l#1 = r#0]\n  scan R\n  scan S\n"
        );
    }

    #[test]
    fn join_fusion_splits_local_cross_and_residual_conjuncts() {
        // σ[#0 = 1 ∧ #1 = #2 ∧ #3 ≠ 5](R × S): the constant conjunct goes to
        // R, the equality becomes the key, the inequality on S's column is
        // pushed into S.
        let p = Predicate::eq(Operand::col(0), Operand::int(1))
            .and(Predicate::eq(Operand::col(1), Operand::col(2)))
            .and(Predicate::neq(Operand::col(3), Operand::int(5)));
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(p);
        let plan = lower(&q);
        assert_eq!(
            plan.explain(),
            "hash-join [l#1 = r#0]\n  σ[#0 = 1]\n    scan R\n  σ[#1 <> 5]\n    scan S\n"
        );
    }

    #[test]
    fn cross_inequality_stays_residual() {
        let p = Predicate::eq(Operand::col(0), Operand::col(2))
            .and(Predicate::neq(Operand::col(1), Operand::col(3)));
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(p);
        let plan = lower(&q);
        assert_eq!(
            plan.explain(),
            "hash-join [l#0 = r#0] residual σ[#1 <> #3]\n  scan R\n  scan S\n"
        );
    }

    #[test]
    fn no_cross_equality_keeps_a_filtered_product() {
        let p = Predicate::neq(Operand::col(0), Operand::col(2));
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(p);
        let plan = lower(&q);
        assert!(!plan.has_hash_join());
        assert_eq!(plan.explain(), "σ[#0 <> #2]\n  ×\n    scan R\n    scan S\n");
    }

    #[test]
    fn filters_merge_and_push_through_projections_and_unions() {
        let q = RaExpr::relation("R")
            .project(vec![1, 0])
            .union(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(0), Operand::int(3)))
            .select(Predicate::eq(Operand::col(1), Operand::int(4)));
        let plan = lower(&q);
        // Both filters merge, distribute over the union, and remap through
        // the projection (output #0 reads input #1, output #1 reads #0).
        assert_eq!(
            plan.explain(),
            "∪\n  π[#1,#0]\n    σ[(#1 = 3 AND #0 = 4)]\n      scan R\n  σ[(#0 = 3 AND #1 = 4)]\n    scan S\n"
        );
    }

    #[test]
    fn filter_pushes_into_the_left_of_difference_and_intersection() {
        let q = RaExpr::relation("R")
            .difference(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(0), Operand::int(1)));
        let plan = lower(&q);
        assert_eq!(plan.explain(), "−\n  σ[#0 = 1]\n    scan R\n  scan S\n");
        let q = RaExpr::relation("R")
            .intersection(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(0), Operand::int(1)));
        assert!(lower(&q).explain().starts_with("∩\n  σ[#0 = 1]"));
    }

    #[test]
    fn projections_compose_distribute_and_vanish() {
        let q = RaExpr::relation("R").project(vec![1, 0]).project(vec![1]);
        assert_eq!(lower(&q).explain(), "π[#0]\n  scan R\n");
        let q = RaExpr::relation("R")
            .union(RaExpr::relation("S"))
            .project(vec![0]);
        assert_eq!(
            lower(&q).explain(),
            "∪\n  π[#0]\n    scan R\n  π[#0]\n    scan S\n"
        );
        let identity = RaExpr::relation("R").project(vec![0, 1]);
        assert_eq!(lower(&identity).explain(), "scan R\n");
    }

    #[test]
    fn equi_join_builder_lowers_to_a_hash_join() {
        let q = RaExpr::relation("R").equi_join(RaExpr::relation("S"), &[(1, 0)], 2);
        let plan = lower(&q);
        assert!(plan.has_hash_join());
        assert_eq!(plan.operator_count(), 3);
    }

    #[test]
    fn divide_delta_values_lower_directly() {
        let q = RaExpr::relation("R").divide(RaExpr::relation("U"));
        let plan = lower(&q);
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.explain(), "÷\n  scan R\n  scan U\n");
        let lit = RaExpr::values(Relation::from_tuples(2, vec![Tuple::ints(&[1, 2])]));
        let q = RaExpr::Delta.union(lit);
        assert_eq!(
            lower(&q).explain(),
            "∪\n  Δ\n  values [2 col(s), 1 row(s)]\n"
        );
    }

    #[test]
    fn lowering_typechecks() {
        assert!(PhysicalPlan::lower(&RaExpr::relation("Nope"), &schema()).is_err());
    }

    #[test]
    fn true_filters_disappear() {
        let q = RaExpr::relation("R").select(Predicate::True);
        assert_eq!(lower(&q).explain(), "scan R\n");
    }

    #[test]
    fn node_ids_are_preorder_and_stable() {
        let q = RaExpr::relation("R")
            .equi_join(RaExpr::relation("S"), &[(1, 0)], 2)
            .project(vec![0]);
        let plan = lower(&q);
        // Preorder: root gets 0, ids cover 0..operator_count contiguously.
        let mut seen = Vec::new();
        fn walk(node: &PhysNode, seen: &mut Vec<u32>) {
            seen.push(node.id());
            for child in node.children() {
                walk(child, seen);
            }
        }
        walk(plan.root(), &mut seen);
        let expected: Vec<u32> = (0..plan.operator_count() as u32).collect();
        assert_eq!(seen, expected);
        // Same query, same schema → same ids (derived PartialEq still holds).
        assert_eq!(plan, lower(&q));
    }

    #[test]
    fn explain_annotated_splices_per_node_suffixes() {
        let q = RaExpr::relation("R").equi_join(RaExpr::relation("S"), &[(1, 0)], 2);
        let plan = lower(&q);
        // Annotating nothing reproduces the plain rendering exactly.
        assert_eq!(plan.explain_annotated(&mut |_| None), plan.explain());
        let annotated = plan.explain_annotated(&mut |node| Some(format!("(#{})", node.id())));
        assert_eq!(
            annotated,
            "hash-join [l#1 = r#0] (#0)\n  scan R (#1)\n  scan S (#2)\n"
        );
    }
}
