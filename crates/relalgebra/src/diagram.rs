//! The logical-theory view of an incomplete database (Section 4 of the
//! paper): every naïve database `D` is described by a formula `δ_D` whose
//! complete models are exactly `[[D]]`.
//!
//! * Under OWA, `δ_D = ∃x̄ PosDiag(D)` — the existentially closed *positive
//!   diagram*, a conjunction of the atoms of `D` with nulls read as variables.
//!   This is a (Boolean) conjunctive query, and `Mod_C(δ_D) = [[D]]_owa`.
//! * Under CWA, `δ_D` additionally asserts domain closure for every relation:
//!   `∀ȳ (R(ȳ) → ⋁_{t̄ ∈ R^D} ȳ = t̄)`. The resulting formula is in `Pos∀G`,
//!   and `Mod_C(δ_D) = [[D]]_cwa`.

use relmodel::value::Value;
use relmodel::Database;

use crate::fo::{FoTerm, Formula};

/// Name used for the variable standing for null `⊥ᵢ` in diagram formulas.
fn null_var(id: u64) -> String {
    format!("n{id}")
}

fn value_term(v: &Value) -> FoTerm {
    match v {
        Value::Const(c) => FoTerm::Const(c.clone()),
        Value::Null(n) => FoTerm::Var(null_var(n.0)),
    }
}

/// The positive diagram `PosDiag(D)`: the conjunction of all atoms of `D`,
/// with each null `⊥ᵢ` replaced by the variable `nᵢ`. Not quantified — use
/// [`owa_theory`] for the existentially closed sentence.
pub fn positive_diagram(db: &Database) -> Formula {
    let mut conjuncts = Vec::new();
    for (name, rel) in db.iter() {
        for t in rel.iter() {
            conjuncts.push(Formula::atom(
                name,
                t.values().iter().map(value_term).collect(),
            ));
        }
    }
    Formula::And(conjuncts)
}

/// The OWA theory of `D`: `δ_D = ∃x̄ PosDiag(D)`, satisfying
/// `Mod_C(δ_D) = [[D]]_owa` (equation (5) of the paper).
pub fn owa_theory(db: &Database) -> Formula {
    let vars: Vec<String> = db.null_ids().iter().map(|n| null_var(n.0)).collect();
    Formula::exists(vars, positive_diagram(db))
}

/// The domain-closure (guarded universal) part of the CWA theory for a single
/// relation: `∀ȳ (R(ȳ) → ⋁_{t̄ ∈ R^D} ȳ = t̄)`.
fn closure_for_relation(name: &str, db: &Database) -> Formula {
    let rel = db.relation(name).expect("relation exists in the database");
    let arity = rel.arity();
    let vars: Vec<String> = (0..arity).map(|i| format!("y{i}")).collect();
    let guard = Formula::atom(name, vars.iter().map(|v| FoTerm::Var(v.clone())).collect());
    let mut disjuncts = Vec::new();
    for t in rel.iter() {
        let eqs: Vec<Formula> = t
            .values()
            .iter()
            .enumerate()
            .map(|(i, v)| Formula::Eq(FoTerm::Var(vars[i].clone()), value_term(v)))
            .collect();
        disjuncts.push(Formula::And(eqs));
    }
    let body = Formula::Or(disjuncts);
    Formula::forall(vars, guard.implies(body))
}

/// The CWA theory of `D`:
/// `∃x̄ ( PosDiag(D) ∧ ⋀_R ∀ȳ (R(ȳ) → ⋁_{t̄ ∈ R^D} ȳ = t̄) )`,
/// a `Pos∀G` sentence with `Mod_C(δ_D) = [[D]]_cwa`.
pub fn cwa_theory(db: &Database) -> Formula {
    let vars: Vec<String> = db.null_ids().iter().map(|n| null_var(n.0)).collect();
    let mut body = positive_diagram(db);
    for rs in db.schema().iter() {
        body = body.and(closure_for_relation(&rs.name, db));
    }
    Formula::exists(vars, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relmodel::builder::{difference_example, tableau_example};
    use relmodel::DatabaseBuilder;

    #[test]
    fn positive_diagram_of_paper_example() {
        // D with R = {(1,2), (2,⊥1), (⊥1,⊥2)} gives
        // PosDiag(D) = R(1,2) ∧ R(2,n1) ∧ R(n1,n2).
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .ints("R", &[1, 2])
            .tuple("R", vec![relmodel::Value::int(2), relmodel::Value::null(1)])
            .tuple(
                "R",
                vec![relmodel::Value::null(1), relmodel::Value::null(2)],
            )
            .build();
        let diag = positive_diagram(&db);
        match &diag {
            Formula::And(conjuncts) => assert_eq!(conjuncts.len(), 3),
            other => panic!("expected conjunction, got {other}"),
        }
        assert!(diag.is_existential_positive());
        assert_eq!(diag.free_vars().len(), 2);
    }

    #[test]
    fn owa_theory_is_an_existential_positive_sentence() {
        let db = tableau_example();
        let theory = owa_theory(&db);
        assert!(theory.is_sentence());
        assert!(theory.is_existential_positive());
        assert!(theory.to_string().contains("R(1, n0)"));
        assert!(theory.to_string().contains("R(n0, 2)"));
    }

    #[test]
    fn cwa_theory_is_pos_forall_g_but_not_existential_positive() {
        let db = tableau_example();
        let theory = cwa_theory(&db);
        assert!(theory.is_sentence());
        assert!(theory.is_pos_forall_g(), "the CWA theory must be in Pos∀G");
        assert!(
            !theory.is_existential_positive(),
            "domain closure uses a universal guard"
        );
    }

    #[test]
    fn cwa_theory_covers_every_relation() {
        let db = difference_example();
        let theory = cwa_theory(&db);
        let s = theory.to_string();
        assert!(s.contains("R(y0)"));
        assert!(s.contains("S(y0)"));
    }

    #[test]
    fn complete_database_has_variable_free_owa_theory() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a"])
            .ints("R", &[1])
            .build();
        let theory = owa_theory(&db);
        assert!(theory.is_sentence());
        // no nulls means no quantifier block
        assert!(matches!(theory, Formula::And(_)));
    }
}
