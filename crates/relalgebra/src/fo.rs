//! First-order formulas (relational calculus), used as the *logical theory*
//! view of incomplete databases (Section 4 of the paper) and to define the
//! fragment `Pos∀G` of positive formulas with universal guards (Section 6).

use std::collections::BTreeSet;
use std::fmt;

use relmodel::value::Constant;

/// A first-order term: a named variable or a constant.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FoTerm {
    /// A variable, identified by name.
    Var(String),
    /// A constant.
    Const(Constant),
}

impl FoTerm {
    /// Convenience constructor for a variable.
    pub fn var(name: impl Into<String>) -> Self {
        FoTerm::Var(name.into())
    }

    /// Convenience constructor for an integer constant.
    pub fn int(i: i64) -> Self {
        FoTerm::Const(Constant::Int(i))
    }

    /// Convenience constructor for a string constant.
    pub fn str(s: impl Into<String>) -> Self {
        FoTerm::Const(Constant::Str(s.into()))
    }
}

impl fmt::Display for FoTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FoTerm::Var(v) => write!(f, "{v}"),
            FoTerm::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A first-order formula over a relational vocabulary with equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A relational atom `R(t₁, …, tₖ)`.
    Atom {
        /// Relation name.
        relation: String,
        /// Argument terms.
        terms: Vec<FoTerm>,
    },
    /// Equality `t₁ = t₂`.
    Eq(FoTerm, FoTerm),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction (empty conjunction is `True`).
    And(Vec<Formula>),
    /// N-ary disjunction (empty disjunction is `False`).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// A relational atom.
    pub fn atom(relation: impl Into<String>, terms: Vec<FoTerm>) -> Self {
        Formula::Atom {
            relation: relation.into(),
            terms,
        }
    }

    /// Conjunction of two formulas, flattening nested conjunctions.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Disjunction of two formulas, flattening nested disjunctions.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Negation.
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Existential closure over the given variables (no-op for an empty list).
    pub fn exists(vars: Vec<String>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Universal closure over the given variables (no-op for an empty list).
    pub fn forall(vars: Vec<String>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// The set of free variables of the formula.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn term_vars(t: &FoTerm, out: &mut BTreeSet<String>) {
            if let FoTerm::Var(v) = t {
                out.insert(v.clone());
            }
        }
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom { terms, .. } => {
                let mut out = BTreeSet::new();
                for t in terms {
                    term_vars(t, &mut out);
                }
                out
            }
            Formula::Eq(a, b) => {
                let mut out = BTreeSet::new();
                term_vars(a, &mut out);
                term_vars(b, &mut out);
                out
            }
            Formula::Not(f) => f.free_vars(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(Formula::free_vars).collect(),
            Formula::Implies(a, b) => {
                let mut out = a.free_vars();
                out.extend(b.free_vars());
                out
            }
            Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                let mut out = body.free_vars();
                for v in vars {
                    out.remove(v);
                }
                out
            }
        }
    }

    /// Is the formula a sentence (no free variables)?
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Is the formula *positive*: built from atoms, equalities, `True`/`False`
    /// using only ∧, ∨, ∃ and ∀ (no negation, no implication)?
    pub fn is_positive(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(_) | Formula::Implies(_, _) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_positive),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.is_positive(),
        }
    }

    /// Is the formula *existential positive* (`∃,∧,∨` only — the logical form
    /// of UCQ)?
    pub fn is_existential_positive(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(_) | Formula::Implies(_, _) | Formula::Forall(_, _) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_existential_positive),
            Formula::Exists(_, f) => f.is_existential_positive(),
        }
    }

    /// Is the formula in `Pos∀G` — positive formulas with universal guards?
    ///
    /// `Pos∀G` formulas are closed under ∧, ∨, ∃, ∀ and the guarded rule:
    /// `∀x̄ (R(x̄) → φ)` where `R` is a relation symbol applied to the
    /// quantified (distinct) variables and `φ` is again in `Pos∀G`.
    /// This class is preserved under strong onto homomorphisms and forms a
    /// representation system for CWA (Sections 5.2 and 6.2 of the paper).
    pub fn is_pos_forall_g(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(_, _) => true,
            Formula::Not(_) => false,
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_pos_forall_g),
            Formula::Exists(_, f) => f.is_pos_forall_g(),
            Formula::Forall(vars, body) => match body.as_ref() {
                // The guarded implication pattern ∀x̄ (R(x̄) → φ).
                Formula::Implies(guard, inner) => {
                    is_guard_atom(guard, vars) && inner.is_pos_forall_g()
                }
                // Plain universal quantification over a Pos∀G body.
                other => other.is_pos_forall_g(),
            },
            // Implication is only allowed directly under a universal guard.
            Formula::Implies(_, _) => false,
        }
    }
}

/// Is `guard` a relational atom whose arguments are exactly the distinct
/// quantified variables `vars` (in any order)?
fn is_guard_atom(guard: &Formula, vars: &[String]) -> bool {
    match guard {
        Formula::Atom { terms, .. } => {
            let mut seen = BTreeSet::new();
            if terms.len() != vars.len() {
                return false;
            }
            for t in terms {
                match t {
                    FoTerm::Var(v) => {
                        if !vars.contains(v) || !seen.insert(v.clone()) {
                            return false;
                        }
                    }
                    FoTerm::Const(_) => return false,
                }
            }
            true
        }
        _ => false,
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom { relation, terms } => {
                let args: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
                write!(f, "{relation}({})", args.join(", "))
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊤");
                }
                let parts: Vec<String> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∧ "))
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "⊥");
                }
                let parts: Vec<String> = fs.iter().map(|g| format!("({g})")).collect();
                write!(f, "{}", parts.join(" ∨ "))
            }
            Formula::Implies(a, b) => write!(f, "({a}) → ({b})"),
            Formula::Exists(vars, body) => write!(f, "∃{} ({body})", vars.join(",")),
            Formula::Forall(vars, body) => write!(f, "∀{} ({body})", vars.join(",")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom_rxy() -> Formula {
        Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("y")])
    }

    #[test]
    fn free_vars_and_sentences() {
        let f = atom_rxy();
        assert_eq!(f.free_vars().len(), 2);
        assert!(!f.is_sentence());
        let closed = Formula::exists(vec!["x".into(), "y".into()], f);
        assert!(closed.is_sentence());
        let partially = Formula::exists(vec!["x".into()], atom_rxy());
        assert_eq!(
            partially.free_vars(),
            vec!["y".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn positivity_classes() {
        let pos = Formula::exists(
            vec!["x".into()],
            atom_rxy().and(Formula::Eq(FoTerm::var("y"), FoTerm::int(2))),
        );
        assert!(pos.is_positive());
        assert!(pos.is_existential_positive());
        assert!(pos.is_pos_forall_g());

        let with_forall = Formula::forall(vec!["x".into()], atom_rxy());
        assert!(with_forall.is_positive());
        assert!(!with_forall.is_existential_positive());
        assert!(with_forall.is_pos_forall_g());

        let negated = atom_rxy().negate();
        assert!(!negated.is_positive());
        assert!(!negated.is_pos_forall_g());
    }

    #[test]
    fn guarded_universal_is_pos_forall_g() {
        // ∀x,y (R(x,y) → ∃z R(y,z))
        let guard = Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("y")]);
        let inner = Formula::exists(
            vec!["z".into()],
            Formula::atom("R", vec![FoTerm::var("y"), FoTerm::var("z")]),
        );
        let f = Formula::forall(vec!["x".into(), "y".into()], guard.implies(inner));
        assert!(f.is_pos_forall_g());
        assert!(!f.is_existential_positive());
        assert!(
            !f.is_positive(),
            "implication is not part of the plain positive fragment"
        );
    }

    #[test]
    fn unguarded_implication_is_not_pos_forall_g() {
        // ∀x,y (R(x,y) ∧ R(y,x) → R(x,x)) — guard is not a single atom over the
        // quantified variables.
        let guard = Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("y")])
            .and(Formula::atom("R", vec![FoTerm::var("y"), FoTerm::var("x")]));
        let f = Formula::forall(
            vec!["x".into(), "y".into()],
            guard.implies(Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("x")])),
        );
        assert!(!f.is_pos_forall_g());

        // Guard atom with repeated variable is also rejected.
        let bad_guard = Formula::atom("R", vec![FoTerm::var("x"), FoTerm::var("x")]);
        let f2 = Formula::forall(
            vec!["x".into(), "y".into()],
            bad_guard.implies(Formula::True),
        );
        assert!(!f2.is_pos_forall_g());

        // Bare implication outside a universal guard is rejected.
        let f3 = atom_rxy().implies(Formula::True);
        assert!(!f3.is_pos_forall_g());
    }

    #[test]
    fn and_or_flattening() {
        let f = atom_rxy().and(atom_rxy()).and(atom_rxy());
        match f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened conjunction, got {other}"),
        }
        let g = Formula::False.or(atom_rxy());
        assert_eq!(g, atom_rxy());
        let h = Formula::True.and(atom_rxy());
        assert_eq!(h, atom_rxy());
    }

    #[test]
    fn display() {
        let f = Formula::forall(
            vec!["x".into()],
            Formula::atom("S", vec![FoTerm::var("x")]).implies(Formula::True),
        );
        assert_eq!(f.to_string(), "∀x ((S(x)) → (⊤))");
        assert_eq!(Formula::And(vec![]).to_string(), "⊤");
        assert_eq!(Formula::Or(vec![]).to_string(), "⊥");
    }
}
