//! Static analysis of relational algebra over incomplete data: a bottom-up
//! abstract interpretation computing, per plan node, the lattice of
//! properties the paper's soundness results turn on — and the lint / dispatch
//! machinery built on top of it.
//!
//! ## The property lattice
//!
//! For every node of an [`RaExpr`], [`analyze`] computes a [`NodeFacts`]
//! record by structural recursion with one transfer function per operator:
//!
//! * **class** — the syntactic fragment ([`QueryClass`]) of the subtree;
//!   [`crate::classify::classify`] is a thin wrapper over this field, so the
//!   classifier and the analyzer can never drift.
//! * **ground** — *null-free reach*: given the database's per-relation
//!   [`NullCensus`], is the subtree's value provably identical in **every**
//!   possible world (under CWA)? A ground subtree evaluates on the plain
//!   physical executor with no loss — even through difference or negation —
//!   because no valuation can change its inputs.
//! * **monotone** — is the subtree monotone in the database instance
//!   (`D₁ ⊆ D₂ ⇒ Q(D₁) ⊆ Q(D₂)`)? For monotone queries the OWA certain
//!   answer coincides with the CWA one, which licenses the engine to use
//!   its CWA-exact machinery under OWA.
//! * **nullable** — a per-output-column over-approximation of which columns
//!   of the naïve value can carry marked nulls ([`ColumnNulls`]).
//! * **certainty preservation** — derived verdict
//!   ([`NodeFacts::certainty_preserving`]): is naïve evaluation of this
//!   subtree provably *exact* for certain answers under a given semantics?
//!   Always at least as strong as the class-based theorem (a refinement,
//!   never coarser).
//! * **duplicate sensitivity** — can a valuation *merge* tuples (or decide
//!   comparisons) in a way naïve set evaluation cannot see? This is the
//!   syntactic site where naïve evaluation diverges from the worlds.
//!
//! ## Consumers
//!
//! 1. [`lint`] — a diagnostic pass with stable codes (`QL001`…`QL006`)
//!    pinpointing *where* unsoundness enters a plan, rendered through
//!    [`annotate`] and the engine's `Engine::analyze`.
//! 2. Analyzer-driven dispatch — the engine consults [`NodeFacts`] to
//!    upgrade whole-query verdicts (ground ⇒ naïve-exact under CWA;
//!    ground ∧ monotone ⇒ naïve-exact under OWA) and
//!    [`Analysis::has_inlinable_subtree`] / [`NodeFacts::split_class`] to
//!    evaluate ground subtrees plainly and lift only the flagged remainder
//!    symbolically.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use relmodel::{Constraint, Database, Schema, Semantics};

use crate::ast::RaExpr;
use crate::classify::{is_divisor_class, QueryClass};
use crate::predicate::Predicate;

// ---------------------------------------------------------------------------
// Null census
// ---------------------------------------------------------------------------

/// Per-relation null statistics of a database — the ground truth the
/// analyzer's *null-free reach* property is computed against.
///
/// A census is either measured from a concrete [`Database`]
/// ([`NullCensus::of_database`]), assembled by an external representation
/// system through [`NullCensus::builder`] (conditional tables provide a
/// hook), or [`NullCensus::pessimistic`] — the no-information census that
/// assumes every relation may carry nulls everywhere. The pessimistic census
/// degrades the analyzer to the purely syntactic classifier.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NullCensus {
    relations: BTreeMap<String, RelationCensus>,
    distinct_nulls: usize,
    pessimistic: bool,
}

/// The census of one relation: which columns may hold nulls, and how many
/// null *positions* (value occurrences, not distinct ids) were counted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RelationCensus {
    /// Per-column: does some tuple carry a null in this column?
    pub nullable: Vec<bool>,
    /// Null value occurrences in the relation (plus, for representation
    /// systems with row conditions, condition-borne null occurrences).
    pub null_positions: usize,
}

impl RelationCensus {
    /// Is the relation provably free of nulls?
    pub fn is_null_free(&self) -> bool {
        self.null_positions == 0 && self.nullable.iter().all(|b| !b)
    }
}

/// Incrementally assembles a [`NullCensus`] — the hook representation
/// systems outside `relalgebra` (conditional tables, repairs) use to feed
/// the analyzer their own notion of "where uncertainty lives".
#[derive(Debug, Default)]
pub struct NullCensusBuilder {
    relations: BTreeMap<String, RelationCensus>,
    ids: BTreeSet<u64>,
}

impl NullCensusBuilder {
    /// Records one relation: its per-column nullability and the distinct
    /// null ids observed in it (values and, for conditional tables, row
    /// conditions).
    pub fn relation(
        mut self,
        name: impl Into<String>,
        nullable: Vec<bool>,
        null_ids: impl IntoIterator<Item = u64>,
        null_positions: usize,
    ) -> Self {
        self.ids.extend(null_ids);
        self.relations.insert(
            name.into(),
            RelationCensus {
                nullable,
                null_positions,
            },
        );
        self
    }

    /// Finishes the census.
    pub fn build(self) -> NullCensus {
        NullCensus {
            relations: self.relations,
            distinct_nulls: self.ids.len(),
            pessimistic: false,
        }
    }
}

impl NullCensus {
    /// The no-information census: every relation is assumed null-bearing in
    /// every column. Analysis against it is exactly the syntactic
    /// classification.
    pub fn pessimistic() -> Self {
        NullCensus {
            relations: BTreeMap::new(),
            distinct_nulls: usize::MAX,
            pessimistic: true,
        }
    }

    /// Starts an empty census for external representation systems.
    pub fn builder() -> NullCensusBuilder {
        NullCensusBuilder::default()
    }

    /// Measures the census of a concrete database: one scan, per-relation
    /// and per-column.
    pub fn of_database(db: &Database) -> Self {
        let mut builder = NullCensus::builder();
        for (name, rel) in db.iter() {
            let mut nullable = vec![false; rel.arity()];
            let mut positions = 0usize;
            let mut ids: BTreeSet<u64> = BTreeSet::new();
            for tuple in rel.iter() {
                for (i, v) in tuple.values().iter().enumerate() {
                    if let Some(id) = v.as_null() {
                        nullable[i] = true;
                        positions += 1;
                        ids.insert(id.index());
                    }
                }
            }
            builder = builder.relation(name, nullable, ids, positions);
        }
        builder.build()
    }

    /// Was this census constructed without information (worst-case
    /// assumptions everywhere)?
    pub fn is_pessimistic(&self) -> bool {
        self.pessimistic
    }

    /// Distinct null ids across the censused relations (`usize::MAX` for
    /// the pessimistic census).
    pub fn distinct_nulls(&self) -> usize {
        self.distinct_nulls
    }

    /// Is the whole database provably null-free?
    pub fn database_null_free(&self) -> bool {
        !self.pessimistic && self.distinct_nulls == 0
    }

    /// Is the named relation provably null-free? Unknown relations are
    /// conservatively null-bearing.
    pub fn relation_null_free(&self, name: &str) -> bool {
        self.relations.get(name).is_some_and(|c| c.is_null_free())
    }

    /// The per-column nullability of the named relation, if censused.
    pub fn relation_columns(&self, name: &str) -> ColumnNulls {
        match self.relations.get(name) {
            Some(c) => ColumnNulls::Known(c.nullable.clone()),
            None => ColumnNulls::Unknown,
        }
    }

    /// May the given column of the named relation carry a null?
    pub fn column_nullable(&self, name: &str, column: usize) -> bool {
        match self.relations.get(name) {
            Some(c) => c.nullable.get(column).copied().unwrap_or(true),
            None => true,
        }
    }

    /// The censused relations, in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &RelationCensus)> {
        self.relations.iter().map(|(n, c)| (n.as_str(), c))
    }
}

// ---------------------------------------------------------------------------
// Column nullability
// ---------------------------------------------------------------------------

/// Per-output-column nullability of a plan node — an over-approximation of
/// which columns of the naïve value can carry marked nulls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnNulls {
    /// Column-precise information (length = output arity).
    Known(Vec<bool>),
    /// No column information (pessimistic census, or an ill-typed subtree):
    /// every column may be null.
    Unknown,
}

impl ColumnNulls {
    /// A null-free vector of the given arity.
    pub fn none(arity: usize) -> Self {
        ColumnNulls::Known(vec![false; arity])
    }

    /// May *any* output column carry a null?
    pub fn any(&self) -> bool {
        match self {
            ColumnNulls::Known(v) => v.iter().any(|b| *b),
            ColumnNulls::Unknown => true,
        }
    }

    /// May the given column carry a null?
    pub fn column(&self, i: usize) -> bool {
        match self {
            ColumnNulls::Known(v) => v.get(i).copied().unwrap_or(true),
            ColumnNulls::Unknown => true,
        }
    }

    fn concat(&self, other: &ColumnNulls) -> ColumnNulls {
        match (self, other) {
            (ColumnNulls::Known(a), ColumnNulls::Known(b)) => {
                ColumnNulls::Known(a.iter().chain(b.iter()).copied().collect())
            }
            _ => ColumnNulls::Unknown,
        }
    }

    /// Pointwise or — both operands may contribute tuples (union).
    fn join(&self, other: &ColumnNulls) -> ColumnNulls {
        match (self, other) {
            (ColumnNulls::Known(a), ColumnNulls::Known(b)) if a.len() == b.len() => {
                ColumnNulls::Known(a.iter().zip(b.iter()).map(|(x, y)| *x || *y).collect())
            }
            _ => ColumnNulls::Unknown,
        }
    }

    /// Pointwise and — every output tuple appears in both operands
    /// (intersection).
    fn meet(&self, other: &ColumnNulls) -> ColumnNulls {
        match (self, other) {
            (ColumnNulls::Known(a), ColumnNulls::Known(b)) if a.len() == b.len() => {
                ColumnNulls::Known(a.iter().zip(b.iter()).map(|(x, y)| *x && *y).collect())
            }
            _ => ColumnNulls::Unknown,
        }
    }

    fn project(&self, columns: &[usize]) -> ColumnNulls {
        match self {
            ColumnNulls::Known(v) => ColumnNulls::Known(
                columns
                    .iter()
                    .map(|&i| v.get(i).copied().unwrap_or(true))
                    .collect(),
            ),
            ColumnNulls::Unknown => ColumnNulls::Unknown,
        }
    }

    /// The dividend-prefix columns surviving a division by a `divisor_arity`
    /// relation.
    fn divide(&self, divisor_arity: Option<usize>) -> ColumnNulls {
        match (self, divisor_arity) {
            (ColumnNulls::Known(v), Some(d)) => {
                ColumnNulls::Known(v[..v.len().saturating_sub(d)].to_vec())
            }
            _ => ColumnNulls::Unknown,
        }
    }

    fn arity(&self) -> Option<usize> {
        match self {
            ColumnNulls::Known(v) => Some(v.len()),
            ColumnNulls::Unknown => None,
        }
    }
}

impl fmt::Display for ColumnNulls {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnNulls::Unknown => write!(f, "nulls:?"),
            ColumnNulls::Known(v) if !v.iter().any(|b| *b) => write!(f, "null-free"),
            ColumnNulls::Known(v) => {
                write!(f, "nulls:")?;
                let mut first = true;
                for (i, b) in v.iter().enumerate() {
                    if *b {
                        if !first {
                            write!(f, ",")?;
                        }
                        write!(f, "#{i}")?;
                        first = false;
                    }
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Node facts
// ---------------------------------------------------------------------------

/// The analyzer's per-node property record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFacts {
    /// The syntactic fragment of the subtree (what
    /// [`crate::classify::classify`] reports).
    pub class: QueryClass,
    /// The fragment of the subtree **after** inlining its maximal ground
    /// proper subtrees as complete literal relations — the class the engine
    /// dispatches on when subtree-split execution is available. Ground nodes
    /// themselves report [`QueryClass::Positive`] (a complete literal).
    pub split_class: QueryClass,
    /// Null-free reach: is the subtree's value identical in every possible
    /// world (valuation-invariant), given the census? Ground subtrees
    /// evaluate exactly on the plain executor regardless of their class.
    pub ground: bool,
    /// Is the subtree monotone in the database instance? (Difference and
    /// division are monotone only when their right operand is
    /// instance-constant.)
    pub monotone: bool,
    /// Is the subtree's value independent of the database instance
    /// altogether (built from literals only)?
    pub constant: bool,
    /// Does the subtree contain a `Values` literal carrying marked nulls —
    /// the classifier's counterexample, where representation-based
    /// evaluators conflate literal and database nulls?
    pub has_null_literal: bool,
    /// Are all selection predicates in the subtree positive (no `≠`, `¬`,
    /// `false`)?
    pub positive_conditions: bool,
    /// Duplicate sensitivity: can a valuation merge input tuples, or decide
    /// a comparison over a possibly-null column, in a way the naïve set
    /// evaluation of this subtree cannot see? The syntactic site where
    /// naïve answers and certain answers part ways.
    pub dup_sensitive: bool,
    /// Per-output-column nullability of the naïve value.
    pub nullable: ColumnNulls,
    /// Nodes in the subtree (the expression's [`RaExpr::size`]).
    pub size: usize,
}

impl NodeFacts {
    /// Is naïve evaluation of this subtree provably **exact** for certain
    /// answers under the given semantics?
    ///
    /// A refinement of [`QueryClass::naive_evaluation_sound`] — never
    /// coarser — adding the census-powered rules:
    ///
    /// * **CWA**: a ground subtree has the same value in every world, so
    ///   naïve evaluation is exact for *any* class;
    /// * **OWA**: for a monotone query the OWA certain answer equals the
    ///   CWA one, so CWA-exactness (by class, or by groundness) transfers.
    pub fn certainty_preserving(&self, semantics: Semantics) -> bool {
        if self.class.naive_evaluation_sound(semantics) {
            return true;
        }
        match semantics {
            Semantics::Cwa => self.ground,
            Semantics::Owa => {
                self.monotone && (self.ground || self.class.naive_evaluation_sound(Semantics::Cwa))
            }
        }
    }
}

/// One analyzed plan node: its facts and its analyzed children, mirroring
/// the expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalyzedNode {
    /// The node's property record.
    pub facts: NodeFacts,
    /// Analyzed children, in operand order.
    pub children: Vec<AnalyzedNode>,
}

/// The result of [`analyze`]: the analyzed tree, rooted at the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    root: AnalyzedNode,
}

impl Analysis {
    /// The root node's facts — the whole-query verdict.
    pub fn root(&self) -> &NodeFacts {
        &self.root.facts
    }

    /// The analyzed tree (for lockstep walks with the expression).
    pub fn node(&self) -> &AnalyzedNode {
        &self.root
    }

    /// Is subtree-split execution applicable: the root itself is not ground,
    /// but some proper subtree larger than a leaf is — so the engine can
    /// evaluate that region once on the plain executor and lift only the
    /// remainder?
    pub fn has_inlinable_subtree(&self) -> bool {
        !self.root.facts.ground && self.root.children.iter().any(has_ground_region)
    }
}

fn has_ground_region(node: &AnalyzedNode) -> bool {
    (node.facts.ground && node.facts.size > 1) || node.children.iter().any(has_ground_region)
}

// ---------------------------------------------------------------------------
// The abstract interpretation
// ---------------------------------------------------------------------------

/// Analyzes `expr` bottom-up against the given null census. Purely
/// syntactic plus census facts: never evaluates the query, tolerates
/// ill-typed expressions (conservatively).
pub fn analyze(expr: &RaExpr, census: &NullCensus) -> Analysis {
    Analysis {
        root: analyze_node(expr, census),
    }
}

fn analyze_node(expr: &RaExpr, census: &NullCensus) -> AnalyzedNode {
    match expr {
        RaExpr::Relation(name) => {
            let ground = census.relation_null_free(name);
            leaf(NodeFacts {
                class: QueryClass::Positive,
                split_class: QueryClass::Positive,
                ground,
                monotone: true,
                constant: false,
                has_null_literal: false,
                positive_conditions: true,
                dup_sensitive: false,
                nullable: census.relation_columns(name),
                size: 1,
            })
        }
        RaExpr::Values(rel) => {
            let complete = rel.is_complete();
            let mut nullable = vec![false; rel.arity()];
            for tuple in rel.iter() {
                for (i, v) in tuple.values().iter().enumerate() {
                    if v.is_null() {
                        nullable[i] = true;
                    }
                }
            }
            let class = if complete {
                QueryClass::Positive
            } else {
                QueryClass::FullRa
            };
            leaf(NodeFacts {
                class,
                split_class: class,
                ground: complete,
                monotone: true,
                constant: true,
                has_null_literal: !complete,
                positive_conditions: true,
                dup_sensitive: false,
                nullable: ColumnNulls::Known(nullable),
                size: 1,
            })
        }
        RaExpr::Delta => {
            let ground = census.database_null_free();
            leaf(NodeFacts {
                class: QueryClass::Positive,
                split_class: QueryClass::Positive,
                ground,
                monotone: true,
                constant: false,
                has_null_literal: false,
                positive_conditions: true,
                dup_sensitive: false,
                nullable: ColumnNulls::Known(vec![!ground; 2]),
                size: 1,
            })
        }
        RaExpr::Select(e, p) => {
            let child = analyze_node(e, census);
            let c = &child.facts;
            let positive = p.is_positive();
            let class = if positive {
                c.class
            } else {
                QueryClass::FullRa
            };
            let facts = NodeFacts {
                class,
                split_class: if c.ground {
                    QueryClass::Positive
                } else if positive {
                    c.split_class
                } else {
                    QueryClass::FullRa
                },
                ground: c.ground,
                monotone: c.monotone,
                constant: c.constant,
                has_null_literal: c.has_null_literal,
                positive_conditions: c.positive_conditions && positive,
                dup_sensitive: c.dup_sensitive
                    || (!c.ground && predicate_touches_nullable(p, &c.nullable)),
                nullable: c.nullable.clone(),
                size: c.size + 1,
            };
            AnalyzedNode {
                facts,
                children: vec![child],
            }
        }
        RaExpr::Project(e, columns) => {
            let child = analyze_node(e, census);
            let c = &child.facts;
            let facts = NodeFacts {
                class: c.class,
                split_class: if c.ground {
                    QueryClass::Positive
                } else {
                    c.split_class
                },
                ground: c.ground,
                monotone: c.monotone,
                constant: c.constant,
                has_null_literal: c.has_null_literal,
                positive_conditions: c.positive_conditions,
                // Projection deduplicates: tuples a valuation merges (via any
                // null-bearing column of the input) collapse invisibly.
                dup_sensitive: c.dup_sensitive || (!c.ground && c.nullable.any()),
                nullable: c.nullable.project(columns),
                size: c.size + 1,
            };
            AnalyzedNode {
                facts,
                children: vec![child],
            }
        }
        RaExpr::Product(a, b) => binary(expr, a, b, census),
        RaExpr::Union(a, b) => binary(expr, a, b, census),
        RaExpr::Intersection(a, b) => binary(expr, a, b, census),
        RaExpr::Difference(a, b) => binary(expr, a, b, census),
        RaExpr::Divide(a, b) => binary(expr, a, b, census),
    }
}

fn leaf(facts: NodeFacts) -> AnalyzedNode {
    AnalyzedNode {
        facts,
        children: Vec::new(),
    }
}

fn binary(expr: &RaExpr, a: &RaExpr, b: &RaExpr, census: &NullCensus) -> AnalyzedNode {
    let left = analyze_node(a, census);
    let right = analyze_node(b, census);
    let (l, r) = (&left.facts, &right.facts);
    let ground = l.ground && r.ground;
    let either_nullable = l.nullable.any() || r.nullable.any();
    let (class, split_class, monotone, nullable, set_dup) = match expr {
        RaExpr::Product(_, _) => (
            l.class.max(r.class),
            l.split_class.max(r.split_class),
            l.monotone && r.monotone,
            l.nullable.concat(&r.nullable),
            false,
        ),
        RaExpr::Union(_, _) => (
            l.class.max(r.class),
            l.split_class.max(r.split_class),
            l.monotone && r.monotone,
            l.nullable.join(&r.nullable),
            either_nullable,
        ),
        RaExpr::Intersection(_, _) => (
            l.class.max(r.class),
            l.split_class.max(r.split_class),
            l.monotone && r.monotone,
            l.nullable.meet(&r.nullable),
            either_nullable,
        ),
        RaExpr::Difference(_, _) => (
            QueryClass::FullRa,
            QueryClass::FullRa,
            // Monotone only when the subtrahend cannot grow with the
            // instance at all.
            l.monotone && r.constant,
            l.nullable.clone(),
            either_nullable,
        ),
        RaExpr::Divide(da, db) => {
            let class = if l.class <= QueryClass::RaCwa && is_divisor_class(db) {
                l.class.max(QueryClass::RaCwa)
            } else {
                QueryClass::FullRa
            };
            let split_class =
                if l.split_class <= QueryClass::RaCwa && split_divisor_class(db, &right) {
                    l.split_class.max(QueryClass::RaCwa)
                } else {
                    QueryClass::FullRa
                };
            let _ = da;
            (
                class,
                split_class,
                l.monotone && r.constant,
                l.nullable.divide(r.nullable.arity()),
                either_nullable,
            )
        }
        _ => unreachable!("binary() is only called on binary operators"),
    };
    let split_class = if ground {
        QueryClass::Positive
    } else {
        split_class
    };
    let facts = NodeFacts {
        class,
        split_class,
        ground,
        monotone,
        constant: l.constant && r.constant,
        has_null_literal: l.has_null_literal || r.has_null_literal,
        positive_conditions: l.positive_conditions && r.positive_conditions,
        dup_sensitive: l.dup_sensitive || r.dup_sensitive || (!ground && set_dup),
        nullable,
        size: l.size + r.size + 1,
    };
    AnalyzedNode {
        facts,
        children: vec![left, right],
    }
}

/// Is the divisor admissible for `RA_cwa` **after** ground-subtree inlining:
/// either ground (inlined to a complete literal, which is admissible), or in
/// `RA(Δ, π, ×, ∪)` with the same allowance recursively?
fn split_divisor_class(expr: &RaExpr, node: &AnalyzedNode) -> bool {
    if node.facts.ground {
        return true;
    }
    match expr {
        RaExpr::Relation(_) | RaExpr::Delta => true,
        RaExpr::Values(rel) => rel.is_complete(),
        RaExpr::Project(e, _) => split_divisor_class(e, &node.children[0]),
        RaExpr::Product(a, b) | RaExpr::Union(a, b) => {
            split_divisor_class(a, &node.children[0]) && split_divisor_class(b, &node.children[1])
        }
        RaExpr::Select(_, _)
        | RaExpr::Intersection(_, _)
        | RaExpr::Difference(_, _)
        | RaExpr::Divide(_, _) => false,
    }
}

fn predicate_touches_nullable(p: &Predicate, nullable: &ColumnNulls) -> bool {
    if matches!(p, Predicate::True) {
        return false;
    }
    p.columns().iter().any(|&c| nullable.column(c))
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

/// Stable diagnostic codes of the lint framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// `QL001` — difference over a null-bearing operand: naïve evaluation
    /// is unsound here (the certain difference can lose tuples no syntactic
    /// set difference sees).
    DifferenceOverNulls,
    /// `QL002` — a null-bearing `Values` literal: representation-based
    /// evaluators conflate the literal `⊥ᵢ` with a database `⊥ᵢ`, an
    /// equality that fails in every world.
    NullLiteral,
    /// `QL003` — a denial constraint compares a symbolic (possibly-null)
    /// attribute: nulls never fire denial constraints, so consistency of
    /// the constrained column is world-dependent.
    DenialOverSymbolic,
    /// `QL004` — a non-positive selection predicate reads a possibly-null
    /// column: three-valued and naïve evaluation diverge at this node.
    NegationOverNulls,
    /// `QL005` — a division whose divisor is outside `RA(Δ, π, ×, ∪)` (and
    /// not ground): the query leaves `RA_cwa`.
    NonRaCwaDivisor,
    /// `QL006` — note: this subtree is ground (world-invariant given the
    /// census) and larger than a leaf, so the engine can evaluate it once
    /// on the plain executor and substitute the result.
    GroundSubtree,
}

impl DiagnosticCode {
    /// The stable code string (`QL001` … `QL006`).
    pub fn code(self) -> &'static str {
        match self {
            DiagnosticCode::DifferenceOverNulls => "QL001",
            DiagnosticCode::NullLiteral => "QL002",
            DiagnosticCode::DenialOverSymbolic => "QL003",
            DiagnosticCode::NegationOverNulls => "QL004",
            DiagnosticCode::NonRaCwaDivisor => "QL005",
            DiagnosticCode::GroundSubtree => "QL006",
        }
    }

    /// The diagnostic's severity.
    pub fn severity(self) -> Severity {
        match self {
            DiagnosticCode::GroundSubtree => Severity::Note,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How seriously to take a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: the analyzer found an *opportunity*, not a hazard.
    Note,
    /// The plan region is unsound for naïve evaluation (or conflates null
    /// kinds); the engine must route around it.
    Warning,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One lint finding, anchored to a plan node by path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: DiagnosticCode,
    /// The severity ([`DiagnosticCode::severity`]).
    pub severity: Severity,
    /// The node path from the root, `root` / `root.0` / `root.1.0` …
    /// (operand indices).
    pub path: String,
    /// Human-readable explanation, naming the operator.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] at {}: {}",
            self.code, self.severity, self.path, self.message
        )
    }
}

/// Lints `expr` against the census (and, when a schema is supplied, its
/// integrity constraints — `QL003`). Diagnostics come out in plan order
/// (parents before children), constraint findings last.
pub fn lint(expr: &RaExpr, census: &NullCensus, schema: Option<&Schema>) -> Vec<Diagnostic> {
    let analysis = analyze(expr, census);
    let mut out = Vec::new();
    lint_walk(expr, analysis.node(), "root", true, &mut out);
    if let Some(schema) = schema {
        lint_constraints(expr, census, schema, &mut out);
    }
    out
}

fn lint_walk(
    expr: &RaExpr,
    node: &AnalyzedNode,
    path: &str,
    is_root: bool,
    out: &mut Vec<Diagnostic>,
) {
    for (code, message) in node_lints(expr, node, is_root) {
        out.push(Diagnostic {
            code,
            severity: code.severity(),
            path: path.to_string(),
            message,
        });
    }
    // A maximal ground region needs no inner diagnostics: the engine
    // evaluates it wholesale.
    if node.facts.ground && !is_root {
        return;
    }
    for (i, (child_expr, child_node)) in expr_children(expr).iter().zip(&node.children).enumerate()
    {
        lint_walk(child_expr, child_node, &format!("{path}.{i}"), false, out);
    }
}

fn expr_children(expr: &RaExpr) -> Vec<&RaExpr> {
    match expr {
        RaExpr::Relation(_) | RaExpr::Values(_) | RaExpr::Delta => Vec::new(),
        RaExpr::Select(e, _) | RaExpr::Project(e, _) => vec![e],
        RaExpr::Product(a, b)
        | RaExpr::Union(a, b)
        | RaExpr::Intersection(a, b)
        | RaExpr::Difference(a, b)
        | RaExpr::Divide(a, b) => vec![a, b],
    }
}

/// The node-local lints, shared between [`lint`] and [`annotate`].
fn node_lints(expr: &RaExpr, node: &AnalyzedNode, is_root: bool) -> Vec<(DiagnosticCode, String)> {
    let mut out = Vec::new();
    if node.facts.ground {
        if !is_root && node.facts.size > 1 {
            out.push((
                DiagnosticCode::GroundSubtree,
                "subtree is world-invariant given the null census; eligible for one plain \
                 evaluation"
                    .to_string(),
            ));
        }
        return out;
    }
    match expr {
        RaExpr::Difference(_, _) => {
            let l = &node.children[0].facts;
            let r = &node.children[1].facts;
            let side = match (l.ground, r.ground) {
                (false, false) => "both operands",
                (false, true) => "the left operand",
                (true, false) => "the right operand",
                (true, true) => unreachable!("a difference of ground operands is ground"),
            };
            out.push((
                DiagnosticCode::DifferenceOverNulls,
                format!(
                    "difference over null-bearing operand ({side} may vary across worlds) — \
                     naive evaluation unsound here"
                ),
            ));
        }
        RaExpr::Values(rel) if !rel.is_complete() => {
            out.push((
                DiagnosticCode::NullLiteral,
                "null literal joins database null: possible worlds value database nulls but \
                 leave query literals untouched, so syntactic evaluation conflates the two"
                    .to_string(),
            ));
        }
        RaExpr::Select(_, p) if !p.is_positive() => {
            let child = &node.children[0].facts;
            if predicate_touches_nullable(p, &child.nullable) {
                out.push((
                    DiagnosticCode::NegationOverNulls,
                    format!(
                        "non-positive selection [{p}] reads a possibly-null column — \
                         three-valued and naive evaluation diverge here"
                    ),
                ));
            }
        }
        RaExpr::Divide(_, b) if !split_divisor_class(b, &node.children[1]) => {
            out.push((
                DiagnosticCode::NonRaCwaDivisor,
                "division divisor is outside RA(Δ, π, ×, ∪) and not ground — the query \
                 leaves RA_cwa"
                    .to_string(),
            ));
        }
        _ => {}
    }
    out
}

fn lint_constraints(
    expr: &RaExpr,
    census: &NullCensus,
    schema: &Schema,
    out: &mut Vec<Diagnostic>,
) {
    let mentioned = expr.relations();
    for constraint in schema.constraints() {
        let Constraint::Denial {
            relation, column, ..
        } = constraint
        else {
            continue;
        };
        if !mentioned.contains(relation.as_str()) {
            continue;
        }
        let Some(rel_schema) = schema.relation(relation) else {
            continue;
        };
        let Some(idx) = rel_schema.attribute_index(column) else {
            continue;
        };
        if census.column_nullable(relation, idx) {
            out.push(Diagnostic {
                code: DiagnosticCode::DenialOverSymbolic,
                severity: Severity::Warning,
                path: "root".to_string(),
                message: format!(
                    "denial constraint `{constraint}` compares symbolic attribute \
                     {relation}.{column} (possibly null): nulls never fire denial constraints, \
                     so consistency here is world-dependent"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Annotated explain
// ---------------------------------------------------------------------------

/// Renders the logical plan with the analyzer's per-node facts and lint
/// codes inline — the `EXPLAIN ANALYZE` of the static world.
pub fn annotate(expr: &RaExpr, census: &NullCensus) -> String {
    let analysis = analyze(expr, census);
    let mut out = String::new();
    annotate_node(expr, analysis.node(), 0, true, &mut out);
    out
}

fn annotate_node(
    expr: &RaExpr,
    node: &AnalyzedNode,
    depth: usize,
    is_root: bool,
    out: &mut String,
) {
    use fmt::Write;
    let f = &node.facts;
    let mut flags = vec![f.class.to_string()];
    if f.ground {
        flags.push("ground".to_string());
    }
    if f.monotone {
        flags.push("monotone".to_string());
    }
    if f.dup_sensitive {
        flags.push("dup-sensitive".to_string());
    }
    flags.push(f.nullable.to_string());
    let codes: Vec<String> = node_lints(expr, node, is_root)
        .iter()
        .map(|(c, _)| c.code().to_string())
        .collect();
    let _ = write!(
        out,
        "{:indent$}{}",
        "",
        node_label(expr),
        indent = depth * 2
    );
    let _ = write!(out, "  [{}]", flags.join(" | "));
    if !codes.is_empty() {
        let _ = write!(out, "  {}", codes.join(" "));
    }
    out.push('\n');
    // Inside a maximal ground region the facts are all implied by
    // `ground`; elide the subtree like the lint walk does.
    if f.ground && !is_root {
        return;
    }
    for (child_expr, child_node) in expr_children(expr).iter().zip(&node.children) {
        annotate_node(child_expr, child_node, depth + 1, false, out);
    }
}

fn node_label(expr: &RaExpr) -> String {
    match expr {
        RaExpr::Relation(name) => name.clone(),
        RaExpr::Values(rel) => format!("values({} tuples, arity {})", rel.len(), rel.arity()),
        RaExpr::Delta => "delta".to_string(),
        RaExpr::Select(_, p) => format!("select[{p}]"),
        RaExpr::Project(_, cols) => {
            let cols: Vec<String> = cols.iter().map(|c| format!("#{c}")).collect();
            format!("project[{}]", cols.join(","))
        }
        RaExpr::Product(_, _) => "product".to_string(),
        RaExpr::Union(_, _) => "union".to_string(),
        RaExpr::Intersection(_, _) => "intersect".to_string(),
        RaExpr::Difference(_, _) => "minus".to_string(),
        RaExpr::Divide(_, _) => "divide".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Operand, Predicate};
    use relmodel::{DatabaseBuilder, Relation, Tuple, Value};

    /// R(a,b) with a null in b; S(a) complete; T(a,b) complete.
    fn census() -> NullCensus {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .relation("S", &["a"])
            .relation("T", &["a", "b"])
            .ints("R", &[1, 10])
            .tuple("R", vec![Value::int(2), Value::null(0)])
            .ints("S", &[1])
            .ints("T", &[1, 2])
            .build();
        NullCensus::of_database(&db)
    }

    #[test]
    fn census_measures_columns_and_relations() {
        let c = census();
        assert!(!c.relation_null_free("R"));
        assert!(c.relation_null_free("S"));
        assert!(c.relation_null_free("T"));
        assert!(!c.database_null_free());
        assert_eq!(c.distinct_nulls(), 1);
        assert!(!c.column_nullable("R", 0));
        assert!(c.column_nullable("R", 1));
        assert!(c.column_nullable("Unknown", 0), "unknown is pessimistic");
        assert_eq!(
            c.relation_columns("R"),
            ColumnNulls::Known(vec![false, true])
        );
    }

    #[test]
    fn ground_reach_follows_the_census() {
        let c = census();
        // A difference of null-free relations is ground: any class, exact.
        let q = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![0]));
        let a = analyze(&q, &c);
        assert!(a.root().ground);
        assert_eq!(a.root().class, QueryClass::FullRa);
        assert!(a.root().certainty_preserving(Semantics::Cwa));
        // The same shape over the null-bearing R is not ground.
        let q = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let a = analyze(&q, &c);
        assert!(!a.root().ground);
        assert!(!a.root().certainty_preserving(Semantics::Cwa));
        // Pessimistic census: nothing relation-based is ground.
        let q = RaExpr::relation("S").difference(RaExpr::relation("T"));
        assert!(!analyze(&q, &NullCensus::pessimistic()).root().ground);
    }

    #[test]
    fn column_nullability_flows_through_operators() {
        let c = census();
        // Projecting R to its null-free column: output null-free; to the
        // nullable column: nullable.
        let a = analyze(&RaExpr::relation("R").project(vec![0]), &c);
        assert!(!a.root().nullable.any());
        let a = analyze(&RaExpr::relation("R").project(vec![1]), &c);
        assert!(a.root().nullable.any());
        // Product concatenates; intersection meets.
        let a = analyze(&RaExpr::relation("S").product(RaExpr::relation("R")), &c);
        assert_eq!(
            a.root().nullable,
            ColumnNulls::Known(vec![false, false, true])
        );
        let a = analyze(
            &RaExpr::relation("R").intersection(RaExpr::relation("T")),
            &c,
        );
        assert!(!a.root().nullable.any(), "meet with a null-free operand");
    }

    #[test]
    fn monotone_tracks_instance_monotonicity() {
        let c = census();
        // σ≠ is instance-monotone even though it is full RA.
        let q = RaExpr::relation("R").select(Predicate::neq(Operand::col(0), Operand::int(1)));
        let a = analyze(&q, &c);
        assert_eq!(a.root().class, QueryClass::FullRa);
        assert!(a.root().monotone);
        // Difference against a relation is not; against a literal it is.
        let q = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![0]));
        assert!(!analyze(&q, &c).root().monotone);
        let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        let q = RaExpr::relation("S").difference(lit);
        assert!(analyze(&q, &c).root().monotone);
        // OWA: monotone + ground ⇒ certainty preserving; monotone alone +
        // CWA-sound class too.
        let q = RaExpr::relation("S").select(Predicate::neq(Operand::col(0), Operand::int(9)));
        let a = analyze(&q, &c);
        assert!(a.root().ground && a.root().monotone);
        assert!(a.root().certainty_preserving(Semantics::Owa));
    }

    #[test]
    fn split_class_inlines_ground_regions() {
        let c = census();
        // (S − πT) ∪ π(R): the non-monotone region is ground, so after
        // inlining the query is positive.
        let core = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![0]));
        let q = core.union(RaExpr::relation("R").project(vec![0]));
        let a = analyze(&q, &c);
        assert_eq!(a.root().class, QueryClass::FullRa);
        assert_eq!(a.root().split_class, QueryClass::Positive);
        assert!(a.has_inlinable_subtree());
        // With the difference over the null-bearing R instead (and a
        // null-bearing top), the class stays full RA and nothing is ground.
        let core = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let q = core.union(RaExpr::relation("R").project(vec![0]));
        let a = analyze(&q, &c);
        assert_eq!(a.root().split_class, QueryClass::FullRa);
        assert!(!a.has_inlinable_subtree());
        // A ground divisor admits RA_cwa after inlining even when selected.
        let divisor = RaExpr::relation("T")
            .select(Predicate::eq(Operand::col(0), Operand::int(1)))
            .project(vec![0]);
        let q = RaExpr::relation("R").divide(divisor);
        let a = analyze(&q, &c);
        assert_eq!(a.root().class, QueryClass::FullRa);
        assert_eq!(a.root().split_class, QueryClass::RaCwa);
    }

    #[test]
    fn refinement_never_coarser_than_the_class_theorem() {
        let c = census();
        let queries = [
            RaExpr::relation("R").project(vec![0]),
            RaExpr::relation("R").divide(RaExpr::relation("S")),
            RaExpr::relation("R").difference(RaExpr::relation("T")),
            RaExpr::relation("S").select(Predicate::neq(Operand::col(0), Operand::int(0))),
        ];
        for q in queries {
            for semantics in [Semantics::Cwa, Semantics::Owa] {
                let facts = analyze(&q, &c).root().clone();
                if facts.class.naive_evaluation_sound(semantics) {
                    assert!(
                        facts.certainty_preserving(semantics),
                        "analyzer coarser than classify on {q} under {semantics}"
                    );
                }
            }
        }
    }

    #[test]
    fn dup_sensitivity_flags_null_comparisons() {
        let c = census();
        // Joining on the nullable column of R.
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(1), Operand::col(2)));
        assert!(analyze(&q, &c).root().dup_sensitive);
        // Joining null-free columns only.
        let q = RaExpr::relation("R")
            .product(RaExpr::relation("S"))
            .select(Predicate::eq(Operand::col(0), Operand::col(2)));
        assert!(!analyze(&q, &c).root().dup_sensitive);
        // Ground subtrees are never duplicate-sensitive.
        let q = RaExpr::relation("T").project(vec![0]);
        assert!(!analyze(&q, &c).root().dup_sensitive);
    }

    #[test]
    fn lints_fire_with_stable_codes() {
        let c = census();
        // QL001 on a difference whose subtrahend may vary.
        let q = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let diags = lint(&q, &c, None);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagnosticCode::DifferenceOverNulls && d.path == "root"));
        // QL002 on a null literal.
        let lit = RaExpr::values(Relation::from_tuples(
            1,
            vec![Tuple::new(vec![Value::null(7)])],
        ));
        let diags = lint(&RaExpr::relation("S").union(lit), &c, None);
        assert!(diags
            .iter()
            .any(|d| d.code == DiagnosticCode::NullLiteral && d.path == "root.1"));
        // QL004 on σ≠ over the nullable column; silent over a null-free one.
        let q = RaExpr::relation("R").select(Predicate::neq(Operand::col(1), Operand::int(1)));
        assert!(lint(&q, &c, None)
            .iter()
            .any(|d| d.code == DiagnosticCode::NegationOverNulls));
        let q = RaExpr::relation("R").select(Predicate::neq(Operand::col(0), Operand::int(1)));
        assert!(!lint(&q, &c, None)
            .iter()
            .any(|d| d.code == DiagnosticCode::NegationOverNulls));
        // QL005 on a non-RA(Δ,π,×,∪), non-ground divisor.
        let divisor = RaExpr::relation("R")
            .select(Predicate::eq(Operand::col(1), Operand::int(1)))
            .project(vec![0]);
        let q = RaExpr::relation("R").divide(divisor);
        assert!(lint(&q, &c, None)
            .iter()
            .any(|d| d.code == DiagnosticCode::NonRaCwaDivisor));
        // QL006 notes the inlinable ground region.
        let core = RaExpr::relation("S").difference(RaExpr::relation("T").project(vec![0]));
        let q = core.union(RaExpr::relation("R").project(vec![0]));
        assert!(lint(&q, &c, None)
            .iter()
            .any(|d| d.code == DiagnosticCode::GroundSubtree && d.severity == Severity::Note));
    }

    #[test]
    fn denial_constraints_over_symbolic_attributes_lint() {
        let db = DatabaseBuilder::new()
            .relation("R", &["a", "b"])
            .deny(
                "R",
                "b",
                relmodel::CompareOp::Gt,
                relmodel::value::Constant::Int(100),
            )
            .tuple("R", vec![Value::int(1), Value::null(0)])
            .build();
        let c = NullCensus::of_database(&db);
        let q = RaExpr::relation("R").project(vec![0]);
        let diags = lint(&q, &c, Some(db.schema()));
        assert!(
            diags
                .iter()
                .any(|d| d.code == DiagnosticCode::DenialOverSymbolic),
            "QL003 must fire: {diags:?}"
        );
        // A query not touching R stays silent.
        let other = DatabaseBuilder::new().relation("S", &["a"]).build();
        let _ = other;
        let q = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
        assert!(lint(&q, &c, Some(db.schema()))
            .iter()
            .all(|d| d.code != DiagnosticCode::DenialOverSymbolic));
    }

    #[test]
    fn annotate_renders_flags_and_codes() {
        let c = census();
        let core = RaExpr::relation("S").difference(RaExpr::relation("R").project(vec![1]));
        let q = core.union(RaExpr::relation("T").project(vec![0]));
        let text = annotate(&q, &c);
        assert!(text.contains("union"), "{text}");
        assert!(text.contains("QL001"), "{text}");
        assert!(text.contains("ground"), "{text}");
        assert!(text.contains("full relational algebra"), "{text}");
    }

    #[test]
    fn null_literals_are_never_ground_but_are_constant() {
        let lit = RaExpr::values(Relation::from_tuples(
            1,
            vec![Tuple::new(vec![Value::null(0)])],
        ));
        let a = analyze(&lit, &census());
        assert!(!a.root().ground);
        assert!(a.root().constant);
        assert!(a.root().has_null_literal);
        assert_eq!(a.root().class, QueryClass::FullRa);
    }
}
