//! Recursive-descent parser producing [`RaExpr`]s.

use std::fmt;

use relalgebra::ast::RaExpr;
use relalgebra::predicate::{Operand, Predicate};

use crate::lexer::{tokenize, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Tokenization failed.
    Lex(LexError),
    /// An unexpected token (or end of input) was found.
    Unexpected {
        /// What was found, rendered as text (`"end of input"` if none).
        found: String,
        /// What the parser was expecting.
        expected: String,
    },
    /// Input continued after a complete expression.
    TrailingInput(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected { found, expected } => {
                write!(f, "unexpected `{found}`, expected {expected}")
            }
            ParseError::TrailingInput(tok) => {
                write!(f, "unexpected trailing input starting at `{tok}`")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError::Lex(e)
    }
}

/// Parses a query in the textual syntax into a relational algebra expression.
pub fn parse(input: &str) -> Result<RaExpr, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::TrailingInput(
            parser.tokens[parser.pos].to_string(),
        ));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == token => Ok(()),
            other => Err(ParseError::Unexpected {
                found: other.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                expected: what.to_owned(),
            }),
        }
    }

    fn keyword(&self) -> Option<&str> {
        match self.peek() {
            Some(Token::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    fn expr(&mut self) -> Result<RaExpr, ParseError> {
        let mut left = self.term()?;
        loop {
            let op = match self.keyword() {
                Some("union") | Some("minus") | Some("intersect") | Some("divide") => {
                    self.keyword().map(str::to_owned)
                }
                _ => None,
            };
            let Some(op) = op else { break };
            self.next();
            let right = self.term()?;
            left = match op.as_str() {
                "union" => left.union(right),
                "minus" => left.difference(right),
                "intersect" => left.intersection(right),
                "divide" => left.divide(right),
                _ => unreachable!("operator keywords are matched above"),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<RaExpr, ParseError> {
        match self.next() {
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(e)
            }
            Some(Token::Ident(word)) => match word.as_str() {
                "select" => {
                    self.expect(&Token::LBracket, "`[` after select")?;
                    let pred = self.predicate()?;
                    self.expect(&Token::RBracket, "`]` after predicate")?;
                    self.expect(&Token::LParen, "`(` after select[..]")?;
                    let inner = self.expr()?;
                    self.expect(&Token::RParen, "`)`")?;
                    Ok(inner.select(pred))
                }
                "project" => {
                    self.expect(&Token::LBracket, "`[` after project")?;
                    let cols = self.columns()?;
                    self.expect(&Token::RBracket, "`]` after columns")?;
                    self.expect(&Token::LParen, "`(` after project[..]")?;
                    let inner = self.expr()?;
                    self.expect(&Token::RParen, "`)`")?;
                    Ok(inner.project(cols))
                }
                "product" => {
                    self.expect(&Token::LParen, "`(` after product")?;
                    let a = self.expr()?;
                    self.expect(&Token::Comma, "`,` between product operands")?;
                    let b = self.expr()?;
                    self.expect(&Token::RParen, "`)`")?;
                    Ok(a.product(b))
                }
                "delta" => Ok(RaExpr::Delta),
                name => Ok(RaExpr::relation(name)),
            },
            other => Err(ParseError::Unexpected {
                found: other.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                expected: "an expression".to_owned(),
            }),
        }
    }

    fn columns(&mut self) -> Result<Vec<usize>, ParseError> {
        let mut cols = Vec::new();
        loop {
            if self.peek() == Some(&Token::Hash) {
                self.next();
            }
            match self.next() {
                Some(Token::Number(n)) if n >= 0 => cols.push(n as usize),
                other => {
                    return Err(ParseError::Unexpected {
                        found: other.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                        expected: "a non-negative column number".to_owned(),
                    })
                }
            }
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(cols)
    }

    fn predicate(&mut self) -> Result<Predicate, ParseError> {
        self.disjunction()
    }

    fn disjunction(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.conjunction()?;
        while self.keyword() == Some("or") {
            self.next();
            let right = self.conjunction()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn conjunction(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.atom()?;
        while self.keyword() == Some("and") {
            self.next();
            let right = self.atom()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn atom(&mut self) -> Result<Predicate, ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == "not" => {
                self.next();
                Ok(self.atom()?.negate())
            }
            Some(Token::Ident(s)) if s == "true" => {
                self.next();
                Ok(Predicate::True)
            }
            Some(Token::Ident(s)) if s == "false" => {
                self.next();
                Ok(Predicate::False)
            }
            Some(Token::LParen) => {
                self.next();
                let p = self.predicate()?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(p)
            }
            _ => {
                let left = self.operand()?;
                let negated = match self.next() {
                    Some(Token::Eq) => false,
                    Some(Token::NotEq) => true,
                    other => {
                        return Err(ParseError::Unexpected {
                            found: other
                                .map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                            expected: "`=` or `!=`".to_owned(),
                        })
                    }
                };
                let right = self.operand()?;
                Ok(if negated {
                    Predicate::neq(left, right)
                } else {
                    Predicate::eq(left, right)
                })
            }
        }
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.next() {
            Some(Token::Hash) => match self.next() {
                Some(Token::Number(n)) if n >= 0 => Ok(Operand::col(n as usize)),
                other => Err(ParseError::Unexpected {
                    found: other.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                    expected: "a column number after `#`".to_owned(),
                }),
            },
            Some(Token::Number(n)) => Ok(Operand::int(n)),
            Some(Token::Str(s)) => Ok(Operand::str(s)),
            other => Err(ParseError::Unexpected {
                found: other.map_or_else(|| "end of input".to_owned(), |t| t.to_string()),
                expected: "`#<col>`, a number, or a string".to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::classify::{classify, QueryClass};

    #[test]
    fn parses_the_unpaid_orders_query() {
        let q = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
        assert_eq!(q.to_string(), "(π[#0](Order) − π[#1](Pay))");
        assert_eq!(classify(&q), QueryClass::FullRa);
    }

    #[test]
    fn parses_selection_predicates() {
        let q = parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").unwrap();
        assert!(q.to_string().contains("oid1"));
        let q = parse("select[not (#0 = 1) and true](R)").unwrap();
        assert_eq!(classify(&q), QueryClass::FullRa);
        let q = parse("select[#0 = 1 and #1 = #2](product(R, S))").unwrap();
        assert_eq!(classify(&q), QueryClass::Positive);
    }

    #[test]
    fn parses_set_operators_left_associatively() {
        let q = parse("R union S union T").unwrap();
        assert_eq!(q.to_string(), "((R ∪ S) ∪ T)");
        let q = parse("R minus S intersect T").unwrap();
        assert_eq!(q.to_string(), "((R − S) ∩ T)");
    }

    #[test]
    fn parses_division_and_delta() {
        let q = parse("R divide project[#0](S)").unwrap();
        assert_eq!(classify(&q), QueryClass::RaCwa);
        let q = parse("R divide delta").unwrap();
        assert_eq!(classify(&q), QueryClass::RaCwa);
    }

    #[test]
    fn parses_parenthesised_expressions() {
        let q = parse("R minus (S union T)").unwrap();
        assert_eq!(q.to_string(), "(R − (S ∪ T))");
    }

    #[test]
    fn boolean_projection() {
        // project[] is not valid (needs at least one column); a Boolean query is
        // written by projecting onto no columns via "project[](..)" — we require
        // at least one number, so use the library API for that. Check the error.
        assert!(parse("project[](R)").is_err());
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("select[#0 = ](R)").is_err());
        assert!(parse("project[#0](R) extra").is_err());
        assert!(parse("select[#0 1](R)").is_err());
        assert!(parse("product(R)").is_err());
        assert!(parse("select #0 = 1 (R)").is_err());
        assert!(parse("project[#-1](R)").is_err());
        let err = parse("select['a' <> ](R)").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }
}
