//! # qparser — a small textual query language
//!
//! The paper assumes SQL as the query toolkit; no canonical relational-algebra
//! toolkit exists for Rust, so this crate provides a compact textual syntax
//! that the examples and benchmarks use to write queries readably. The
//! language maps 1:1 onto [`relalgebra::ast::RaExpr`]:
//!
//! ```text
//! expr    := term (("union" | "minus" | "intersect" | "divide") term)*
//! term    := "select" "[" pred "]" "(" expr ")"
//!          | "project" "[" cols "]" "(" expr ")"
//!          | "product" "(" expr "," expr ")"
//!          | "delta"
//!          | IDENT                          -- base relation
//!          | "(" expr ")"
//! pred    := disj
//! disj    := conj ("or" conj)*
//! conj    := atom ("and" atom)*
//! atom    := "not" atom | "true" | "false"
//!          | operand ("=" | "!=") operand | "(" pred ")"
//! operand := "#" NUMBER | NUMBER | "'" STRING "'"
//! cols    := "#"? NUMBER ("," "#"? NUMBER)*
//! ```
//!
//! Set operators associate to the left. Columns are 0-based positions.
//!
//! ```
//! use qparser::parse;
//! // The unpaid-orders query of the paper's introduction:
//! let q = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
//! assert_eq!(q.to_string(), "(π[#0](Order) − π[#1](Pay))");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod plan;

pub use lexer::{tokenize, LexError, Token};
pub use parser::{parse, ParseError};
pub use plan::{parse_and_plan, PlanTextError};
