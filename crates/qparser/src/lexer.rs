//! Tokenizer for the query language.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier (relation name or keyword, lowercased keywords are
    /// distinguished by the parser).
    Ident(String),
    /// An integer literal.
    Number(i64),
    /// A single-quoted string literal (quotes stripped).
    Str(String),
    /// `#` — column marker.
    Hash,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=` or `<>`
    NotEq,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Hash => write!(f, "#"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Comma => write!(f, ","),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "!="),
        }
    }
}

/// A lexing error with the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset of the error.
    pub position: usize,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes the input.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes: Vec<char> = input.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '[' => {
                tokens.push(Token::LBracket);
                i += 1;
            }
            ']' => {
                tokens.push(Token::RBracket);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '#' => {
                tokens.push(Token::Hash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else {
                    return Err(LexError {
                        position: i,
                        message: "expected '>' after '<'".into(),
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != '\'' {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(LexError {
                        position: i,
                        message: "unterminated string literal".into(),
                    });
                }
                tokens.push(Token::Str(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                let value = text.parse::<i64>().map_err(|_| LexError {
                    position: start,
                    message: format!("invalid number `{text}`"),
                })?;
                tokens.push(Token::Number(value));
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                tokens.push(Token::Ident(bytes[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(LexError {
                    position: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_query() {
        let toks = tokenize("project[#0](Order) minus project[#1](Pay)").unwrap();
        assert_eq!(toks[0], Token::Ident("project".into()));
        assert_eq!(toks[1], Token::LBracket);
        assert_eq!(toks[2], Token::Hash);
        assert_eq!(toks[3], Token::Number(0));
        assert!(toks.contains(&Token::Ident("minus".into())));
    }

    #[test]
    fn strings_numbers_operators() {
        let toks = tokenize("select[#1 = 'oid1' or #2 != -5](Pay)").unwrap();
        assert!(toks.contains(&Token::Str("oid1".into())));
        assert!(toks.contains(&Token::NotEq));
        assert!(toks.contains(&Token::Number(-5)));
        let toks = tokenize("#0 <> 3").unwrap();
        assert!(toks.contains(&Token::NotEq));
    }

    #[test]
    fn lex_errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("a < b").is_err());
        assert!(tokenize("a $ b").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for t in tokenize("select[#0 = 1](R)").unwrap() {
            assert!(!t.to_string().is_empty());
        }
        assert!(LexError {
            position: 0,
            message: "x".into()
        }
        .to_string()
        .contains("byte 0"));
    }
}
