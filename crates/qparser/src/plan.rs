//! Text straight to a typechecked plan: the parser-side entry point of the
//! evaluation engine's front door.

use std::fmt;

use relalgebra::plan::PlannedQuery;
use relalgebra::typecheck::TypeError;
use relmodel::Schema;

use crate::parser::{parse, ParseError};

/// Errors from [`parse_and_plan`]: either the text does not parse, or the
/// parsed expression does not typecheck against the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTextError {
    /// The input text is not a well-formed query.
    Parse(ParseError),
    /// The query is well-formed but ill-typed for the schema.
    Type(TypeError),
}

impl fmt::Display for PlanTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanTextError::Parse(e) => write!(f, "parse error: {e}"),
            PlanTextError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for PlanTextError {}

impl From<ParseError> for PlanTextError {
    fn from(e: ParseError) -> Self {
        PlanTextError::Parse(e)
    }
}

impl From<TypeError> for PlanTextError {
    fn from(e: TypeError) -> Self {
        PlanTextError::Type(e)
    }
}

/// Parses a textual query and immediately typechecks + classifies it against
/// `schema`, producing a [`PlannedQuery`] ready for the evaluation engine.
///
/// This is the one-call path from user-facing text to an executable plan:
///
/// ```
/// use qparser::parse_and_plan;
/// use relalgebra::classify::QueryClass;
/// use relmodel::Schema;
///
/// let schema = Schema::builder()
///     .relation("Order", &["o_id", "product"])
///     .relation("Pay", &["p_id", "order", "amount"])
///     .build();
/// let plan = parse_and_plan("project[#0](Order) minus project[#1](Pay)", &schema).unwrap();
/// assert_eq!(plan.arity(), 1);
/// assert_eq!(plan.class(), QueryClass::FullRa);
/// ```
pub fn parse_and_plan(input: &str, schema: &Schema) -> Result<PlannedQuery, PlanTextError> {
    let expr = parse(input)?;
    Ok(PlannedQuery::new(expr, schema)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use relalgebra::classify::QueryClass;

    fn schema() -> Schema {
        Schema::builder()
            .relation("R", &["a", "b"])
            .relation("S", &["b"])
            .build()
    }

    #[test]
    fn text_to_plan() {
        let plan = parse_and_plan("project[#1](R) union S", &schema()).unwrap();
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.class(), QueryClass::Positive);

        let plan = parse_and_plan("R divide S", &schema()).unwrap();
        assert_eq!(plan.arity(), 1);
        assert_eq!(plan.class(), QueryClass::RaCwa);
    }

    #[test]
    fn parse_errors_and_type_errors_are_distinguished() {
        let err = parse_and_plan("project[#1](", &schema()).unwrap_err();
        assert!(matches!(err, PlanTextError::Parse(_)), "{err}");
        assert!(err.to_string().contains("parse error"));

        let err = parse_and_plan("R union S", &schema()).unwrap_err();
        assert!(matches!(err, PlanTextError::Type(_)), "{err}");
        assert!(err.to_string().contains("type error"));

        let err = parse_and_plan("T", &schema()).unwrap_err();
        assert!(matches!(
            err,
            PlanTextError::Type(TypeError::UnknownRelation(_))
        ));
    }
}
