//! Property-style tests for the paper's core invariants, checked on
//! deterministic sweeps of randomly generated incomplete databases and
//! queries. (The offline build environment has no `proptest`; seeded loops
//! over `datagen` give the same coverage reproducibly.)

use certain_core::homomorphism::{is_homomorphic, HomKind};
use certain_core::naive_theorem::naive_evaluation_works;
use certain_core::ordering::{less_informative, InfoOrdering};
use ctables::ctable::ConditionalDatabase;
use ctables::verify::strong_representation_holds;
use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use exchange::chase::chase;
use exchange::mapping::SchemaMapping;
use exchange::solutions::is_solution;
use incomplete_data::prelude::*;
use releval::worlds::WorldOptions;

/// A small random incomplete database, parameterised by seed; sizes are kept
/// tiny so the possible-world ground truth stays cheap.
fn small_db(seed: u64, nulls: usize) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 3,
        domain_size: 4,
        distinct_nulls: nulls,
        null_rate_percent: 30,
        seed,
    })
}

const CASES: u64 = 24;

/// Equation (4): naïve evaluation computes certain answers for positive
/// queries, under both OWA and CWA.
#[test]
fn naive_evaluation_exact_for_positive_queries() {
    for seed in 0..CASES {
        let db = small_db(seed * 31 + 1, 2);
        let q = random_positive_query(
            &random_schema(),
            &QueryGenConfig {
                seed: seed * 17 + 5,
                ..Default::default()
            },
        );
        assert_eq!(relalgebra::classify::classify(&q), QueryClass::Positive);
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let report =
                naive_evaluation_works(&q, &db, semantics, &WorldOptions::default()).unwrap();
            assert!(
                report.agrees,
                "naïve ≠ ground truth for {q} under {semantics} (seed {seed})"
            );
        }
    }
}

/// CWA-naïve evaluation works for RA_cwa division queries.
#[test]
fn naive_evaluation_exact_for_division_under_cwa() {
    for seed in 0..CASES {
        let db = small_db(seed * 13 + 3, 2);
        let q = random_division_query(
            &random_schema(),
            &QueryGenConfig {
                seed: seed * 7 + 11,
                ..Default::default()
            },
        );
        assert_eq!(relalgebra::classify::classify(&q), QueryClass::RaCwa);
        let report =
            naive_evaluation_works(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        assert!(
            report.agrees,
            "CWA-naïve ≠ ground truth for {q} (seed {seed})"
        );
    }
}

/// SQL's 3VL evaluation never returns a non-certain complete tuple for
/// positive queries (it is sound, just incomplete).
#[test]
fn three_valued_logic_sound_for_positive_queries() {
    for seed in 0..CASES {
        let db = small_db(seed * 41 + 7, 2);
        let q = random_positive_query(
            &random_schema(),
            &QueryGenConfig {
                seed: seed * 23 + 2,
                ..Default::default()
            },
        );
        let engine = Engine::new(&db).options(EngineOptions::exhaustive());
        let sql = engine.baseline_3vl(&q).unwrap().answers;
        let truth = engine.ground_truth(&q).unwrap().answers;
        assert!(
            sql.is_subset(&truth),
            "3VL over-reported for {q} (seed {seed})"
        );
    }
}

/// Every CWA world of a database is at least as informative as the
/// database, under both orderings (axiom 2 of representation systems).
#[test]
fn worlds_are_above_their_source() {
    for seed in 0..CASES {
        let db = small_db(seed * 3 + 2, 2);
        let domain = relmodel::semantics::adequate_domain(&db, &Default::default(), 2);
        for world in relmodel::semantics::enumerate_cwa_worlds(&db, &domain)
            .into_iter()
            .take(3)
        {
            assert!(less_informative(&db, &world, InfoOrdering::Owa));
            assert!(less_informative(&db, &world, InfoOrdering::Cwa));
        }
    }
}

/// Homomorphism existence is transitive (the OWA ordering is a preorder).
#[test]
fn homomorphism_transitivity() {
    for seed in 0..CASES {
        let a = small_db(seed * 19 + 4, 2);
        let domain = relmodel::semantics::adequate_domain(&a, &Default::default(), 2);
        let worlds = relmodel::semantics::enumerate_cwa_worlds(&a, &domain);
        if let Some(b) = worlds.first() {
            // a ⪯ b and b ⪯ b ∪ extra ⇒ a ⪯ b ∪ extra
            let mut c = b.clone();
            c.insert("S", relmodel::Tuple::ints(&[999])).unwrap();
            assert!(is_homomorphic(&a, b, HomKind::Any));
            assert!(is_homomorphic(b, &c, HomKind::Any));
            assert!(is_homomorphic(&a, &c, HomKind::Any));
        }
    }
}

/// Conditional tables are a strong representation system for relational
/// algebra under CWA, including difference and intersection.
#[test]
fn ctables_strong_representation() {
    for seed in 0..CASES {
        let db = small_db(seed * 29 + 6, 2);
        let cdb = ConditionalDatabase::from_database(&db);
        for text in [
            "R minus T",
            "project[#0](R) intersect S",
            "project[#1](R) union S",
        ] {
            let q = parse(text).unwrap();
            assert!(
                strong_representation_holds(&q, &cdb, 2).unwrap(),
                "failed for {text} (seed {seed})"
            );
        }
    }
}

/// The chase always produces a solution of the mapping, and introduces one
/// null per trigger.
#[test]
fn chase_produces_solutions() {
    for n_orders in 1usize..6 {
        let mapping = SchemaMapping::order_to_customer_example();
        let mut b = relmodel::DatabaseBuilder::new().relation("Order", &["o_id", "product"]);
        for i in 0..n_orders {
            b = b.strs("Order", &[&format!("o{i}"), &format!("p{}", i % 3)]);
        }
        let source = b.build();
        let result = chase(&source, &mapping);
        assert!(is_solution(&source, &result.target, &mapping));
        assert_eq!(result.triggers_fired, n_orders);
        assert_eq!(result.nulls_introduced as usize, n_orders);
    }
}
