//! Property-based tests (proptest) for the paper's core invariants, checked on
//! randomly generated incomplete databases and queries.

use proptest::prelude::*;

use certain_core::homomorphism::{is_homomorphic, HomKind};
use certain_core::naive_theorem::naive_evaluation_works;
use certain_core::ordering::{less_informative, InfoOrdering};
use ctables::ctable::ConditionalDatabase;
use ctables::verify::strong_representation_holds;
use datagen::{random_database, random_division_query, random_positive_query, QueryGenConfig, RandomDbConfig};
use datagen::random::random_schema;
use exchange::chase::chase;
use exchange::mapping::SchemaMapping;
use exchange::solutions::is_solution;
use qparser::parse;
use relalgebra::classify::{classify, QueryClass};
use relmodel::{Database, Semantics};
use releval::worlds::WorldOptions;

/// A small random incomplete database, parameterised by seed; sizes are kept
/// tiny so the possible-world ground truth stays cheap.
fn small_db(seed: u64, nulls: usize) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 3,
        domain_size: 4,
        distinct_nulls: nulls,
        null_rate_percent: 30,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Equation (4): naïve evaluation computes certain answers for positive
    /// queries, under both OWA and CWA.
    #[test]
    fn naive_evaluation_exact_for_positive_queries(seed in 0u64..500, qseed in 0u64..500) {
        let db = small_db(seed, 2);
        let q = random_positive_query(&random_schema(), &QueryGenConfig { seed: qseed, ..Default::default() });
        prop_assert_eq!(classify(&q), QueryClass::Positive);
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let report = naive_evaluation_works(&q, &db, semantics, &WorldOptions::default()).unwrap();
            prop_assert!(report.agrees, "naïve ≠ ground truth for {} under {}", q, semantics);
        }
    }

    /// CWA-naïve evaluation works for RA_cwa division queries.
    #[test]
    fn naive_evaluation_exact_for_division_under_cwa(seed in 0u64..500, qseed in 0u64..500) {
        let db = small_db(seed, 2);
        let q = random_division_query(&random_schema(), &QueryGenConfig { seed: qseed, ..Default::default() });
        prop_assert_eq!(classify(&q), QueryClass::RaCwa);
        let report = naive_evaluation_works(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        prop_assert!(report.agrees, "CWA-naïve ≠ ground truth for {}", q);
    }

    /// SQL's 3VL evaluation never returns a non-certain tuple for positive
    /// queries (it is sound, just incomplete).
    #[test]
    fn three_valued_logic_sound_for_positive_queries(seed in 0u64..500, qseed in 0u64..500) {
        let db = small_db(seed, 2);
        let q = random_positive_query(&random_schema(), &QueryGenConfig { seed: qseed, ..Default::default() });
        let sql = releval::three_valued::eval_3vl(&q, &db).unwrap();
        let truth = releval::worlds::certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        prop_assert!(sql.complete_part().is_subset(&truth));
    }

    /// Every CWA world of a database is at least as informative as the
    /// database, under both orderings (axiom 2 of representation systems).
    #[test]
    fn worlds_are_above_their_source(seed in 0u64..500) {
        let db = small_db(seed, 2);
        let domain = relmodel::semantics::adequate_domain(&db, &Default::default(), 2);
        for world in relmodel::semantics::enumerate_cwa_worlds(&db, &domain).into_iter().take(3) {
            prop_assert!(less_informative(&db, &world, InfoOrdering::Owa));
            prop_assert!(less_informative(&db, &world, InfoOrdering::Cwa));
        }
    }

    /// Homomorphism existence is transitive (the OWA ordering is a preorder).
    #[test]
    fn homomorphism_transitivity(seed in 0u64..500) {
        let a = small_db(seed, 2);
        let domain = relmodel::semantics::adequate_domain(&a, &Default::default(), 2);
        let worlds = relmodel::semantics::enumerate_cwa_worlds(&a, &domain);
        if let Some(b) = worlds.first() {
            // a ⪯ b and b ⪯ b ∪ extra ⇒ a ⪯ b ∪ extra
            let mut c = b.clone();
            c.insert("S", relmodel::Tuple::ints(&[999])).unwrap();
            prop_assert!(is_homomorphic(&a, b, HomKind::Any));
            prop_assert!(is_homomorphic(b, &c, HomKind::Any));
            prop_assert!(is_homomorphic(&a, &c, HomKind::Any));
        }
    }

    /// Conditional tables are a strong representation system for relational
    /// algebra under CWA, including difference and intersection.
    #[test]
    fn ctables_strong_representation(seed in 0u64..500) {
        let db = small_db(seed, 2);
        let cdb = ConditionalDatabase::from_database(&db);
        for text in ["R minus T", "project[#0](R) intersect S", "project[#1](R) union S"] {
            let q = parse(text).unwrap();
            prop_assert!(strong_representation_holds(&q, &cdb, 2).unwrap(), "failed for {}", text);
        }
    }

    /// The chase always produces a solution of the mapping, and applying it to
    /// a larger source never fires fewer triggers.
    #[test]
    fn chase_produces_solutions(n_orders in 1usize..6) {
        let mapping = SchemaMapping::order_to_customer_example();
        let mut b = relmodel::DatabaseBuilder::new().relation("Order", &["o_id", "product"]);
        for i in 0..n_orders {
            b = b.strs("Order", &[&format!("o{i}"), &format!("p{}", i % 3)]);
        }
        let source = b.build();
        let result = chase(&source, &mapping);
        prop_assert!(is_solution(&source, &result.target, &mapping));
        prop_assert_eq!(result.triggers_fired, n_orders);
        prop_assert_eq!(result.nulls_introduced as usize, n_orders);
    }
}
