//! Golden-snapshot lane for the analyzer's diagnostics: the rendered
//! [`AnalysisReport`]s for a set of hand-picked fixtures plus a
//! deterministic datagen sweep are checked into
//! `tests/snapshots/analysis.snap`. Any drift in lint codes, severities,
//! annotation flags, or dispatch verdicts fails the build as a *visible*
//! diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test analysis_snapshots
//! ```
//!
//! The datagen section always renders exactly 64 generated queries
//! (independent of `FUZZ_CASES`) so the snapshot is stable across CI and
//! local runs.

use std::fmt::Write as _;

use datagen::random::random_schema;
use datagen::{
    random_database_with_null_free, random_division_query, random_full_ra_query,
    random_mixed_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;

const SNAPSHOT_PATH: &str = "tests/snapshots/analysis.snap";

/// The orders/payments database of the paper's introduction plus a shaped
/// random one: both fixed, so every report below is deterministic.
fn fixture_section() -> String {
    let mut out = String::new();
    let db = relmodel::builder::orders_and_payments_example();
    let engine = Engine::new(&db);
    let fixtures: &[(&str, &str)] = &[
        ("positive projection", "project[#0](Order)"),
        (
            "unpaid orders (difference over a null-bearing operand)",
            "project[#0](Order) minus project[#1](Pay)",
        ),
        (
            "division by a base relation",
            "product(project[#0](Order), project[#1](Pay)) divide project[#1](Pay)",
        ),
        (
            "ground difference under a nullable union (subtree split)",
            "(project[#0](Order) minus project[#0](Order)) union project[#1](Pay)",
        ),
    ];
    for (title, text) in fixtures {
        let report = engine.analyze_text(text).expect("fixture analyzes");
        let _ = writeln!(out, "== {title}\n-- {text}\n{report}");
    }
    // OWA flips the verdicts for the non-monotone fixtures.
    let owa = Engine::new(&db).semantics(Semantics::Owa);
    let report = owa
        .analyze_text("project[#0](Order) minus project[#1](Pay)")
        .unwrap();
    let _ = writeln!(
        out,
        "== unpaid orders under OWA\n-- project[#0](Order) minus project[#1](Pay)\n{report}"
    );
    out
}

/// Exactly 64 datagen queries (16 seeds × 4 generators) analyzed against a
/// fixed shaped database, rendered one line per query.
fn datagen_section() -> String {
    let mut out = String::new();
    let schema = random_schema();
    let db = random_database_with_null_free(
        &RandomDbConfig {
            tuples_per_relation: 3,
            null_rate_percent: 40,
            seed: 7,
            ..Default::default()
        },
        &["S", "T"],
    );
    let engine = Engine::new(&db);
    type Generator = fn(&relmodel::Schema, &QueryGenConfig) -> RaExpr;
    let generators: &[(&str, Generator)] = &[
        ("positive", random_positive_query),
        ("division", random_division_query),
        ("full_ra", random_full_ra_query),
        ("mixed", random_mixed_query),
    ];
    for seed in 0..16u64 {
        for (name, generate) in generators {
            let q = generate(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            let report = engine.analyze(&q).expect("generated queries analyze");
            let codes: Vec<String> = report
                .diagnostics
                .iter()
                .map(|d| format!("{}@{}", d.code.code(), d.path))
                .collect();
            let _ = writeln!(
                out,
                "{name}/{seed}: class={} split={} ground={} monotone={} \
                 dispatch={}({}) diags=[{}]",
                report.facts.class,
                report.facts.split_class,
                report.facts.ground,
                report.facts.monotone,
                report.strategy,
                report.guarantee,
                codes.join(",")
            );
        }
    }
    out
}

fn render() -> String {
    format!(
        "# Analyzer diagnostics snapshot.\n\
         # Regenerate with: UPDATE_SNAPSHOTS=1 cargo test --test analysis_snapshots\n\n\
         [fixtures]\n\n{}\n[datagen 16x4]\n\n{}",
        fixture_section(),
        datagen_section()
    )
}

#[test]
fn analyzer_diagnostics_match_the_golden_snapshot() {
    let rendered = render();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT_PATH);
    if std::env::var("UPDATE_SNAPSHOTS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, &rendered).expect("snapshot is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {SNAPSHOT_PATH} ({e}); \
             run UPDATE_SNAPSHOTS=1 cargo test --test analysis_snapshots"
        )
    });
    assert!(
        rendered == expected,
        "analyzer diagnostics drifted from {SNAPSHOT_PATH}.\n\
         If the change is intentional, bless it with \
         UPDATE_SNAPSHOTS=1 cargo test --test analysis_snapshots.\n\
         --- expected ---\n{expected}\n--- got ---\n{rendered}"
    );
}
