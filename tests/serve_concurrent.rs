//! Thread-stress for the serving layer: writers publish snapshot versions
//! while readers query concurrently, and every report must be internally
//! consistent with the `snapshot_version` it claims — no torn reads, no
//! answer computed half on one version and half on the next.
//!
//! The invariant engine: the served database holds `R = {(v)}` where `v` is
//! exactly the snapshot version, so *the certain answer encodes the
//! version*. A report whose answers disagree with its `stats.snapshot_version`
//! is a torn read by construction. A second pass differentially checks the
//! service (caches and all) against fresh one-shot [`Engine`] runs on pinned
//! snapshots of every version.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use incomplete_data::prelude::*;
use incomplete_data::serve::{CertainService, Snapshot};
use relmodel::builder::DatabaseBuilder;

fn versioned_db(v: i64) -> Database {
    DatabaseBuilder::new()
        .relation("R", &["v"])
        .ints("R", &[v])
        .build()
}

fn singleton(v: i64) -> Relation {
    let mut rel = Relation::new(1);
    rel.insert(Tuple::new(vec![Value::int(v)]));
    rel
}

/// The version a report's answer set encodes (the single value in `R`).
fn answered_version(report: &CertainReport) -> i64 {
    assert_eq!(report.answers.len(), 1, "R always holds exactly one tuple");
    let tuple = report.answers.iter().next().unwrap();
    match tuple.values()[0] {
        Value::Const(relmodel::Constant::Int(v)) => v,
        ref other => panic!("R holds ints, got {other:?}"),
    }
}

#[test]
fn concurrent_readers_never_see_torn_snapshots() {
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 200;
    const VERSIONS: u64 = 20;

    let service = Arc::new(CertainService::new(versioned_db(0)));
    // Every version's snapshot, pinned for the differential pass below.
    let archive: Arc<Mutex<Vec<Arc<Snapshot>>>> = Arc::new(Mutex::new(vec![service.snapshot()]));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let service = Arc::clone(&service);
        let archive = Arc::clone(&archive);
        let done = Arc::clone(&done);
        thread::spawn(move || {
            for v in 1..=VERSIONS {
                let published = service.update(|db| {
                    let rel = db.relation_mut("R").unwrap();
                    *rel = singleton(v as i64);
                });
                assert_eq!(published, v, "versions are monotone by one");
                archive.lock().unwrap().push(service.snapshot());
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let service = Arc::clone(&service);
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut submitted = 0usize;
                let mut hits = 0usize;
                while submitted < QUERIES_PER_READER || !done.load(Ordering::Acquire) {
                    // Mix the entry points: single submits (hot + cold — the
                    // same text repeats, so the caches are exercised under
                    // contention) and batches pinning one snapshot.
                    let reports: Vec<CertainReport> = if reader % 2 == 0 {
                        vec![service.submit("R").unwrap()]
                    } else {
                        service
                            .submit_batch(&["R", " R "])
                            .into_iter()
                            .map(|r| r.unwrap())
                            .collect()
                    };
                    let batch_versions: Vec<Option<u64>> =
                        reports.iter().map(|r| r.stats.snapshot_version).collect();
                    assert!(
                        batch_versions.windows(2).all(|w| w[0] == w[1]),
                        "a batch answers on ONE snapshot, got {batch_versions:?}"
                    );
                    for report in reports {
                        let claimed = report
                            .stats
                            .snapshot_version
                            .expect("service reports always carry a version");
                        // THE torn-read check: the answer must encode the
                        // exact version the report claims.
                        assert_eq!(
                            answered_version(&report) as u64,
                            claimed,
                            "answer tuples and snapshot_version disagree"
                        );
                        assert_eq!(report.guarantee, Guarantee::Exact);
                        submitted += 1;
                        if report.stats.cache_hit {
                            hits += 1;
                        }
                    }
                }
                (submitted, hits)
            })
        })
        .collect();

    writer.join().unwrap();
    let mut total = 0;
    let mut total_hits = 0;
    for reader in readers {
        let (submitted, hits) = reader.join().unwrap();
        total += submitted;
        total_hits += hits;
    }
    assert!(total >= READERS * QUERIES_PER_READER);
    assert!(
        total_hits > 0,
        "with {total} repeated submits across {VERSIONS} versions, some must hit the cache"
    );
    assert_eq!(service.version(), VERSIONS);

    // Differential pass: for every archived version, the service's answer on
    // the pinned snapshot (possibly cached) must equal a fresh, cache-free
    // engine run on that snapshot's own database.
    let archive = archive.lock().unwrap();
    assert_eq!(archive.len() as u64, VERSIONS + 1);
    for snap in archive.iter() {
        let served = snap
            .engine(relmodel::Semantics::Cwa.into(), *service.engine_options())
            .plan_text("R")
            .unwrap();
        let fresh = Engine::new(snap.database()).plan_text("R").unwrap();
        assert_eq!(
            served.answers,
            fresh.answers,
            "version {} diverged from a fresh engine",
            snap.version()
        );
        assert_eq!(served.answers, singleton(snap.version() as i64));
    }

    let telemetry = service.telemetry();
    assert_eq!(telemetry.updates, VERSIONS);
    assert!(telemetry.result_hits >= total_hits as u64);
}

#[test]
fn slow_query_ring_survives_concurrent_stress_with_untorn_traces() {
    // Zero threshold → every query is "slow": four readers and a publishing
    // writer hammer the ring, and every captured entry must carry a complete,
    // untorn span tree whose strategy span matches the entry's own strategy.
    const READERS: usize = 4;
    const QUERIES_PER_READER: usize = 50;
    const CAPACITY: usize = 16;

    let service = Arc::new(CertainService::with_options(
        versioned_db(0),
        incomplete_data::serve::ServeOptions {
            slow_query_threshold: Some(std::time::Duration::ZERO),
            slow_query_capacity: CAPACITY,
            ..Default::default()
        },
    ));

    let readers: Vec<_> = (0..READERS)
        .map(|reader| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                for i in 0..QUERIES_PER_READER {
                    let query = if (reader + i) % 2 == 0 {
                        "R"
                    } else {
                        "R union R"
                    };
                    service.submit(query).unwrap();
                    // Concurrent readers may also snapshot mid-stress; a torn
                    // push would surface here as a half-built trace.
                    if i % 10 == 0 {
                        for entry in service.slow_queries() {
                            assert!(entry.trace.is_some(), "entry published without trace");
                        }
                    }
                }
            })
        })
        .collect();
    let writer = {
        let service = Arc::clone(&service);
        thread::spawn(move || {
            for v in 1..=5 {
                service.update(|db| {
                    let rel = db.relation_mut("R").unwrap();
                    *rel = singleton(v);
                });
                thread::yield_now();
            }
        })
    };
    for reader in readers {
        reader.join().unwrap();
    }
    writer.join().unwrap();

    let slow = service.slow_queries();
    assert_eq!(slow.len(), CAPACITY, "zero threshold fills the ring");
    for entry in &slow {
        assert!(entry.query == "R" || entry.query == "R union R");
        let trace = entry.trace.as_ref().expect("armed ring forces tracing on");
        assert_eq!(trace.name, "query", "trace root must be the query span");
        let plan = trace.find("plan").expect("trace lost its plan span");
        assert!(plan.duration <= trace.duration, "child outlived its root");
        let execute = trace.find("execute").expect("trace lost its execute span");
        assert!(execute.duration <= trace.duration);
        trace
            .find(entry.strategy.name())
            .expect("strategy span must match the entry's own strategy");
        if !entry.cache_hit {
            assert!(
                entry.latency >= trace.duration,
                "service latency envelops the engine's own measurement"
            );
        }
    }
}

#[test]
fn concurrent_consistent_answers_share_one_conflict_graph_build() {
    // A dirty database under consistent-answer semantics, hammered by
    // threads: the snapshot's conflict graph must be built exactly once.
    let db = DatabaseBuilder::new()
        .relation("R", &["k", "v"])
        .key("R", &["k"])
        .ints("R", &[1, 10])
        .ints("R", &[1, 20])
        .ints("R", &[2, 30])
        .build();
    let service = Arc::new(CertainService::with_options(
        db,
        incomplete_data::serve::ServeOptions {
            semantics: relmodel::Semantics::Cwa.into(),
            ..Default::default()
        },
    ));
    let snap = service.snapshot();
    assert_eq!(snap.conflict_graph_builds(), 0);

    let handles: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            thread::spawn(move || {
                for _ in 0..25 {
                    let report = service
                        .submit_with(
                            "R",
                            incomplete_data::engine::Semantics::ConsistentAnswers,
                            *service.engine_options(),
                        )
                        .unwrap();
                    assert_eq!(report.guarantee, Guarantee::Exact);
                    assert_eq!(report.answers.len(), 1, "only (2,30) survives all repairs");
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(
        snap.conflict_graph_builds(),
        1,
        "100 consistent-answer queries across 4 threads: one build"
    );
}
