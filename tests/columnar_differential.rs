//! Differential fuzz harness for the morsel-driven columnar core: the
//! batched executors replayed against their row-at-a-time references on
//! random workloads.
//!
//! The columnar rewrite keeps the row executors (`releval::exec`,
//! `exec::approx`, `exec::ctable`) precisely so this harness can hold the
//! batched core to them, case by case, across seeded random databases ×
//! random queries of every [`QueryClass`]:
//!
//! 1. plain tuples: `exec::columnar::execute` == `exec::execute`, exact
//!    relation equality, swept across morsel sizes (1 row per morsel
//!    maximises chunk boundaries; the default covers the vectorized path);
//! 2. the certain⁺/possible? pair: `exec::columnar::approx` ==
//!    `exec::approx`, both sides, including the **interval** entry point
//!    (`execute_approx_between`) consistent query answering depends on;
//! 3. condition-carrying c-table rows: `exec::columnar::ctable` ≡
//!    `exec::ctable`, compared semantically (identical instantiations in
//!    every world over an adequate domain) — candidate order differs
//!    between the two indexes, so condition trees differ structurally;
//! 4. the null-rate-swept mostly-ground workload
//!    (`random_database_with_null_rate`): the ground-run fast path at
//!    0%/1%/10%/50% nulls against both row references.
//!
//! The `FUZZ_CASES` environment variable scales the sweep, as in
//! `physical_differential.rs`; `FUZZ_CASES=1000` is the acceptance-grade
//! run (split 1–4, it stays within the CI release-fuzz budget).

use datagen::random::random_schema;
use datagen::{
    random_database, random_database_with_null_rate, random_division_query, random_full_ra_query,
    random_positive_query, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use incomplete_data::{ctables, relalgebra, releval, relmodel};

use ctables::ctable::ConditionalDatabase;
use relalgebra::ast::RaExpr;
use relalgebra::predicate::{Operand, Predicate};
use releval::exec;
use relmodel::valuation::ValuationEnumerator;

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

/// Morsel sizes the sweeps run at: single-row morsels maximise chunk
/// boundaries, 3 exercises ragged tails, 1024 is the default vectorized
/// configuration.
const MORSELS: [usize; 3] = [1, 3, 1024];

fn fuzz_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 2 + (seed % 4) as usize,
        domain_size: 3 + (seed % 3) as usize,
        distinct_nulls: (seed % 4) as usize,
        null_rate_percent: (seed * 17 % 60) as u32,
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

fn fuzz_query(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &config),
        QueryClass::RaCwa => random_division_query(&schema, &config),
        QueryClass::FullRa => random_full_ra_query(&schema, &config),
    }
}

/// Batched plain execution == row plain execution, across morsel sizes.
#[test]
fn columnar_plain_matches_row_executor() {
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(5).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let reference = exec::execute(plan.physical(), &db);
            for morsel in MORSELS {
                let (batched, stats) =
                    exec::columnar::execute_counted_with_morsel(plan.physical(), &db, morsel);
                assert_eq!(
                    batched, reference,
                    "MISMATCH columnar vs row for {q} ({class}, seed {seed}, morsel {morsel}) \
                     over\n{db}"
                );
                assert_eq!(
                    stats.symbolic_rows, 0,
                    "plain execution is all-syntactic; no symbolic routing for {q}"
                );
            }
        }
    }
}

/// Batched pair execution == row pair execution, both sides, across morsel
/// sizes.
#[test]
fn columnar_approx_matches_row_pair_executor() {
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed.wrapping_add(0xa11ce));
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(7).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let reference = exec::approx::execute_approx(plan.physical(), &db);
            for morsel in MORSELS {
                let (batched, _) = exec::columnar::approx::execute_approx_between_with_morsel(
                    plan.physical(),
                    &db,
                    &db,
                    morsel,
                );
                assert_eq!(
                    batched.certain, reference.certain,
                    "certain side diverged for {q} ({class}, seed {seed}, morsel {morsel}) \
                     over\n{db}"
                );
                assert_eq!(
                    batched.possible, reference.possible,
                    "possible side diverged for {q} ({class}, seed {seed}, morsel {morsel}) \
                     over\n{db}"
                );
            }
        }
    }
}

/// The interval entry point (`lower ⊆ upper`): certain reads from the
/// complete part, possible from the full database — the exact contract the
/// repairs crate's conflict-free-core approximation executes.
#[test]
fn columnar_approx_between_matches_row_interval_executor() {
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed.wrapping_add(0xbe7));
        let lower = db.complete_part();
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(9).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let (reference, _) = exec::approx::execute_approx_between(plan.physical(), &lower, &db);
            let (batched, _) =
                exec::columnar::approx::execute_approx_between(plan.physical(), &lower, &db);
            assert_eq!(
                batched.certain, reference.certain,
                "interval certain diverged for {q} ({class}, seed {seed}) over\n{db}"
            );
            assert_eq!(
                batched.possible, reference.possible,
                "interval possible diverged for {q} ({class}, seed {seed}) over\n{db}"
            );
        }
    }
}

/// Batched c-table execution ≡ row c-table execution, compared semantically
/// (identical instantiations in every world over an adequate domain),
/// across morsel sizes.
#[test]
fn columnar_ctable_matches_row_executor_semantically() {
    // The valuation sweep is |domain|^|nulls| per case; cap the per-case
    // null count so the acceptance-grade FUZZ_CASES=1000 run stays fast.
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed.wrapping_add(0xc7ab1e));
        if db.null_ids().len() > 3 {
            continue;
        }
        let cdb = ConditionalDatabase::from_database(&db);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(11).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let reference = exec::ctable::execute_ctable(plan.physical(), &cdb);
            for morsel in MORSELS {
                let (batched, _) = exec::columnar::ctable::execute_ctable_counted_with_morsel(
                    plan.physical(),
                    &cdb,
                    morsel,
                );
                let mut nulls = cdb.null_ids();
                nulls.extend(batched.null_ids());
                nulls.extend(reference.null_ids());
                let domain = cdb.adequate_domain(&q.constants(), 1);
                for v in ValuationEnumerator::new(nulls, domain) {
                    assert_eq!(
                        batched.instantiate(&v),
                        reference.instantiate(&v),
                        "c-table instantiations diverge for {q} ({class}, seed {seed}, \
                         morsel {morsel}) over\n{db}"
                    );
                }
            }
        }
    }
}

/// The null-rate-swept mostly-ground workload: the ground-run fast path the
/// tentpole is about, checked against both row references at every rate.
/// Rows are ~200 per relation, so this also covers multi-morsel execution
/// at small morsel sizes.
#[test]
fn null_rate_sweep_agrees_with_row_executors() {
    let join = RaExpr::relation("R")
        .product(RaExpr::relation("S"))
        .select(Predicate::eq(Operand::col(1), Operand::col(2)));
    let queries = [
        join.clone().project(vec![0, 3]),
        join.select(Predicate::neq(Operand::col(0), Operand::col(3))),
        RaExpr::relation("R")
            .project(vec![1])
            .difference(RaExpr::relation("S").project(vec![0])),
    ];
    let cases = fuzz_cases().min(64);
    for seed in 0..cases {
        for rate in [0, 1, 10, 50] {
            let db = random_database_with_null_rate(200, rate, seed);
            for q in &queries {
                let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
                let reference = exec::execute(plan.physical(), &db);
                let (batched, _) =
                    exec::columnar::execute_counted_with_morsel(plan.physical(), &db, 64);
                assert_eq!(
                    batched, reference,
                    "plain mismatch at {rate}% nulls for {q} (seed {seed})"
                );
                let pair_ref = exec::approx::execute_approx(plan.physical(), &db);
                let (pair, stats) = exec::columnar::approx::execute_approx_between_with_morsel(
                    plan.physical(),
                    &db,
                    &db,
                    64,
                );
                assert_eq!(
                    pair.certain, pair_ref.certain,
                    "pair certain mismatch at {rate}% nulls for {q} (seed {seed})"
                );
                assert_eq!(
                    pair.possible, pair_ref.possible,
                    "pair possible mismatch at {rate}% nulls for {q} (seed {seed})"
                );
                if rate == 0 {
                    assert_eq!(
                        stats.symbolic_rows, 0,
                        "a complete database must route everything through the ground runs"
                    );
                }
            }
        }
    }
}
