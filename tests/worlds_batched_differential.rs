//! Differential fuzz harness for the batched enumeration folds: the
//! overlay/mask shard runners replayed against their row-instantiating
//! references on random workloads.
//!
//! The morsel-native refactor kept both reference folds public precisely so
//! this harness can hold the batched paths to them, case by case, across
//! seeded random databases × random queries of every [`QueryClass`] ×
//! morsel sizes:
//!
//! 1. possible worlds: `releval::worlds::stream_certain_answer` (valuation
//!    overlays through the split executor) ==
//!    `stream_certain_answer_rows` (one materialized `Database` per world),
//!    under CWA and OWA-with-extension — answers, worlds visited, and
//!    early-exit behaviour all equal, world by world;
//! 2. repairs: `repairs::fold::stream_consistent_answer` (core + survival
//!    masks) == `stream_consistent_answer_rows`, on complete *and*
//!    null-bearing inconsistent databases (the latter checks the fallback
//!    dispatch agrees too).
//!
//! Morsel sizes are swept through the `MORSEL_ROWS` environment seed (the
//! fold entry points read it per shard); a shared lock serializes the two
//! env-mutating tests. `FUZZ_CASES` scales the sweep as in the sibling
//! harnesses; `FUZZ_CASES=1000` is the acceptance-grade run.

use std::sync::Mutex;

use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_full_ra_query, random_inconsistent_database,
    random_positive_query, InconsistentDbConfig, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use incomplete_data::repairs::{
    stream_consistent_answer, stream_consistent_answer_rows, ConflictGraph, RepairOptions,
};
use incomplete_data::{relalgebra, releval, relmodel};

use relalgebra::ast::RaExpr;
use releval::worlds::{stream_certain_answer, stream_certain_answer_rows, WorldOptions};
use relmodel::batch::MORSEL_ROWS_ENV;

/// Serializes the env-mutating tests: `MORSEL_ROWS` is process-global.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

/// Morsel sizes the sweeps run at: single-row morsels maximise chunk
/// boundaries, 3 exercises ragged tails, 1024 is the default vectorized
/// configuration.
const MORSELS: [usize; 3] = [1, 3, 1024];

fn fuzz_query(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &config),
        QueryClass::RaCwa => random_division_query(&schema, &config),
        QueryClass::FullRa => random_full_ra_query(&schema, &config),
    }
}

/// Small instances: the row reference materializes every world, so the
/// OWA-extension case needs few nulls and a small domain to keep the
/// per-case world space in the hundreds.
fn fuzz_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 2 + (seed % 3) as usize,
        domain_size: 3,
        distinct_nulls: (seed % 2) as usize + 1,
        null_rate_percent: 20 + (seed * 13 % 40) as u32,
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

/// Harness part 1: the overlay-batched world fold equals the
/// row-instantiating one — same answers, same worlds visited, same early
/// exit — across semantics, query classes, and morsel sizes.
#[test]
fn batched_world_fold_matches_row_fold() {
    let _env = ENV_LOCK.lock().expect("env lock poisoned");
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(5).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            for (semantics, owa_extra) in [(Semantics::Cwa, 0usize), (Semantics::Owa, 1)] {
                // Cap the world space so a rare large case pre-errors (in
                // both folds identically) instead of stalling the sweep.
                let opts = WorldOptions {
                    max_owa_extra: owa_extra,
                    threads: Some(1),
                    max_worlds: 4096,
                    ..WorldOptions::default()
                };
                for morsel in MORSELS {
                    std::env::set_var(MORSEL_ROWS_ENV, morsel.to_string());
                    let batched = stream_certain_answer(&plan, &db, semantics, &opts);
                    let rows = stream_certain_answer_rows(&plan, &db, semantics, &opts);
                    let context = format!(
                        "{q} ({class}, {semantics}, extra {owa_extra}, seed {seed}, \
                         morsel {morsel}) over\n{db}"
                    );
                    match (batched, rows) {
                        (Ok(batched), Ok(rows)) => {
                            assert_eq!(batched.answers, rows.answers, "MISMATCH {context}");
                            assert_eq!(
                                batched.worlds_visited, rows.worlds_visited,
                                "visit counts diverge for {context}"
                            );
                            assert_eq!(
                                batched.early_exit, rows.early_exit,
                                "early exit diverges for {context}"
                            );
                            assert_eq!(
                                batched.worlds_batched, batched.worlds_visited,
                                "every visited world must batch for {context}"
                            );
                            assert_eq!(
                                rows.worlds_batched, 0,
                                "the rows reference must not batch for {context}"
                            );
                        }
                        (Err(b), Err(r)) => {
                            assert_eq!(
                                format!("{b}"),
                                format!("{r}"),
                                "error behaviour diverges for {context}"
                            );
                        }
                        (b, r) => panic!(
                            "one fold errored, the other answered for {context}: \
                             batched {b:?}, rows {r:?}"
                        ),
                    }
                }
            }
        }
    }
    std::env::remove_var(MORSEL_ROWS_ENV);
}

/// A random inconsistent database, optionally null-free: complete inputs
/// exercise the mask path, null-bearing ones the fallback agreement.
fn fuzz_dirty_db(seed: u64, with_nulls: bool) -> Database {
    random_inconsistent_database(&InconsistentDbConfig {
        tuples_per_relation: 2 + (seed % 3) as usize,
        domain_size: 3 + (seed % 3) as usize,
        violation_rate_percent: (seed * 17 % 70) as u32,
        null_rate_percent: if with_nulls {
            (seed * 7 % 35) as u32
        } else {
            0
        },
        distinct_nulls: if with_nulls { (seed % 3) as usize } else { 0 },
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

/// Harness part 2: the mask-batched repair fold equals the row-instantiating
/// one — same answers, same repairs visited, same early exit — across query
/// classes, morsel sizes, and both complete and null-bearing inputs.
#[test]
fn batched_repair_fold_matches_row_fold() {
    let _env = ENV_LOCK.lock().expect("env lock poisoned");
    for seed in 0..fuzz_cases() {
        for with_nulls in [false, true] {
            let db = fuzz_dirty_db(seed.wrapping_add(0xc0de), with_nulls);
            let graph = ConflictGraph::build(&db);
            for class in ALL_CLASSES {
                let q = fuzz_query(class, seed.wrapping_mul(7).wrapping_add(class as u64));
                let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
                let opts = RepairOptions::default().with_threads(1);
                for morsel in MORSELS {
                    std::env::set_var(MORSEL_ROWS_ENV, morsel.to_string());
                    let batched = stream_consistent_answer(&plan, &db, &graph, &opts);
                    let rows = stream_consistent_answer_rows(&plan, &db, &graph, &opts);
                    let context = format!(
                        "{q} ({class}, seed {seed}, nulls {with_nulls}, morsel {morsel}) \
                         over\n{db}"
                    );
                    match (batched, rows) {
                        (Ok(batched), Ok(rows)) => {
                            assert_eq!(batched.answers, rows.answers, "MISMATCH {context}");
                            assert_eq!(
                                batched.repairs_visited, rows.repairs_visited,
                                "visit counts diverge for {context}"
                            );
                            assert_eq!(
                                batched.early_exit, rows.early_exit,
                                "early exit diverges for {context}"
                            );
                            let expected_batched = if db.is_complete() {
                                batched.repairs_visited
                            } else {
                                0
                            };
                            assert_eq!(
                                batched.repairs_batched, expected_batched,
                                "mask-path accounting wrong for {context}"
                            );
                            assert_eq!(
                                rows.repairs_batched, 0,
                                "the rows reference must not batch for {context}"
                            );
                        }
                        (Err(b), Err(r)) => {
                            assert_eq!(
                                format!("{b}"),
                                format!("{r}"),
                                "error behaviour diverges for {context}"
                            );
                        }
                        (b, r) => panic!(
                            "one fold errored, the other answered for {context}: \
                             batched {b:?}, rows {r:?}"
                        ),
                    }
                }
            }
        }
    }
    std::env::remove_var(MORSEL_ROWS_ENV);
}
