//! Differential fuzz harness: the symbolic c-table strategy replayed
//! against the possible-world oracle on random workloads.
//!
//! PR 1 and PR 2 both shipped evaluators that looked plausible and were
//! quietly unsound until property tests caught them (naïve∩3VL on full RA;
//! the stringly world dedup). The symbolic strategy gets the same
//! treatment from day one: seeded loops over `datagen::random_database` ×
//! random queries of **every** [`QueryClass`], asserting
//!
//! 1. `CTableStrategy` == `stream_certain_answer` under CWA, case by case
//!    (zero mismatches tolerated), and
//! 2. engine reports never violate their stated guarantee, whatever
//!    strategy the planner picked.
//!
//! The `FUZZ_CASES` environment variable scales the sweep: it defaults to a
//! CI-sized smoke run; `FUZZ_CASES=1000 cargo test --release --test
//! symbolic_differential` is the acceptance-grade local run.

use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_full_ra_query, random_positive_query,
    QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use releval::strategy::Strategy;
use releval::symbolic::CTableStrategy;
use releval::worlds::{stream_certain_answer, WorldOptions};

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

/// A random database whose shape (size, null budget, null rate) itself
/// varies with the seed, so the sweep covers complete databases, null-heavy
/// ones, and everything between — while keeping the world oracle affordable.
fn fuzz_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 2 + (seed % 3) as usize,
        domain_size: 3 + (seed % 2) as usize,
        distinct_nulls: (seed % 4) as usize,
        null_rate_percent: (seed * 13 % 55) as u32,
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

fn fuzz_query(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &config),
        QueryClass::RaCwa => random_division_query(&schema, &config),
        QueryClass::FullRa => random_full_ra_query(&schema, &config),
    }
}

/// The harness core: symbolic == streaming world oracle under CWA, for
/// every class, across `FUZZ_CASES` seeds. Any mismatch is a soundness bug
/// in one of the two (and the oracle is the spec).
#[test]
fn symbolic_matches_world_oracle_on_cwa() {
    let cases = fuzz_cases();
    let mut answered = 0u64;
    let mut punted = 0u64;
    for seed in 0..cases {
        let db = fuzz_db(seed);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(7).wrapping_add(class as u64));
            assert_eq!(relalgebra::classify::classify(&q), class, "generator drift");
            let plan = relalgebra::plan::PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let symbolic =
                match CTableStrategy::default().eval_unchecked(&plan, &db, Semantics::Cwa) {
                    Ok(answers) => answers,
                    // A solver-budget punt is legal (deep difference towers make
                    // the DNF genuinely explode) — the engine-level test checks
                    // the fallback path for those. Anything else is a bug.
                    Err(releval::EvalError::SymbolicPunt(
                        releval::symbolic::PuntReason::SolverBudget { .. },
                    )) => {
                        punted += 1;
                        continue;
                    }
                    Err(e) => panic!("unexpected symbolic error: {e} ({q}, seed {seed})"),
                };
            let oracle =
                stream_certain_answer(&plan, &db, Semantics::Cwa, &WorldOptions::default())
                    .unwrap();
            assert_eq!(
                symbolic, oracle.answers,
                "MISMATCH symbolic vs worlds for {q} ({class}, seed {seed}) over\n{db}"
            );
            answered += 1;
        }
    }
    assert_eq!(answered + punted, cases * ALL_CLASSES.len() as u64);
    assert!(
        answered * 10 >= (answered + punted) * 8,
        "symbolic must answer at least 80% of generated workloads \
         (answered {answered}, punted {punted})"
    );
}

/// Oracle answers for guarantee checking. Under OWA the oracle lets worlds
/// grow by one tuple so over-claims become visible (finite minimal-world
/// enumeration would be as blind as the code under test).
fn truth(db: &Database, semantics: Semantics, q: &RaExpr) -> Relation {
    let world_options = match semantics {
        Semantics::Cwa => WorldOptions::default(),
        Semantics::Owa => WorldOptions::with_owa_extra(1),
    };
    Engine::new(db)
        .semantics(semantics)
        .options(EngineOptions::exhaustive().with_world_options(world_options))
        .ground_truth(q)
        .unwrap()
        .answers
}

/// Whatever the planner picked — naïve, symbolic, approximation — the
/// report's guarantee must hold against the oracle, under both semantics.
#[test]
fn engine_guarantees_never_violated_across_the_fuzz_sweep() {
    let cases = fuzz_cases();
    for seed in 0..cases {
        let db = fuzz_db(seed.wrapping_add(0xbeef));
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(11).wrapping_add(class as u64));
            for semantics in [Semantics::Cwa, Semantics::Owa] {
                let report = Engine::new(&db).semantics(semantics).plan(&q).unwrap();
                let t = truth(&db, semantics, &q);
                let context = format!("{q} ({class}, {semantics}, seed {seed})");
                match report.guarantee {
                    Guarantee::Exact => assert_eq!(report.answers, t, "Exact violated: {context}"),
                    Guarantee::Sound => {
                        assert!(report.answers.is_subset(&t), "Sound violated: {context}")
                    }
                    Guarantee::Complete => {
                        assert!(t.is_subset(&report.answers), "Complete violated: {context}")
                    }
                    Guarantee::NoGuarantee => {}
                }
                // Bookkeeping invariants of the new dispatch: symbolic runs
                // report solver work and no worlds; world runs report no
                // solver work.
                match report.strategy {
                    StrategyKind::SymbolicCTable => {
                        assert!(report.stats.solver_calls.is_some(), "{context}");
                        assert!(report.stats.worlds_enumerated.is_none(), "{context}");
                        assert!(report.stats.fallback.is_none(), "{context}");
                    }
                    StrategyKind::WorldsGroundTruth => {
                        assert!(report.stats.solver_calls.is_none(), "{context}");
                    }
                    _ => {}
                }
            }
        }
    }
}

/// The engine front door and the raw strategy agree on CWA — the dispatch
/// layer must not perturb answers on the way through, and when the raw
/// strategy punts, the engine's report must carry the fallback trail (and a
/// still-exact answer, since the fallback is the world oracle). The static
/// analyzer may legitimately dispatch *past* symbolic — a complete database
/// proves the query ground, and an inlinable ground core may leave a
/// naïve-exact remainder — so the strategy assertion accepts the analyzer's
/// upgrade but demands identical answers in every case.
#[test]
fn engine_symbolic_reports_match_raw_strategy() {
    let cases = fuzz_cases().min(64);
    for seed in 0..cases {
        let db = fuzz_db(seed.wrapping_add(0x5ca1e));
        let q = fuzz_query(QueryClass::FullRa, seed.wrapping_mul(3).wrapping_add(2));
        let report = Engine::new(&db).plan(&q).unwrap();
        let plan = relalgebra::plan::PlannedQuery::new(q.clone(), db.schema()).unwrap();
        match CTableStrategy::default().eval_unchecked(&plan, &db, Semantics::Cwa) {
            Ok(raw) => {
                if report.strategy != StrategyKind::SymbolicCTable {
                    // Only the analyzer is allowed to pre-empt symbolic, and
                    // only with a naïve-exact dispatch it can prove.
                    assert_eq!(
                        report.strategy,
                        StrategyKind::NaiveExact,
                        "{q} (seed {seed})"
                    );
                    assert!(report.stats.analyzer.unwrap().upgraded, "{q} (seed {seed})");
                }
                assert_eq!(report.guarantee, Guarantee::Exact, "{q} (seed {seed})");
                assert_eq!(report.answers, raw, "{q} (seed {seed})");
            }
            Err(releval::EvalError::SymbolicPunt(reason)) => {
                // Subtree inlining can shrink the plan enough that the
                // engine's symbolic run no longer punts where the raw one
                // does; otherwise the world-oracle fallback must be on the
                // report. Either way the answer stays exact.
                if report
                    .stats
                    .analyzer
                    .is_some_and(|a| a.inlined_subtrees > 0)
                {
                    assert!(
                        report.stats.fallback.is_none()
                            || report.stats.fallback == Some(FallbackReason::Symbolic(reason)),
                        "{q} (seed {seed})"
                    );
                } else {
                    assert_eq!(
                        report.strategy,
                        StrategyKind::WorldsGroundTruth,
                        "{q} (seed {seed})"
                    );
                    assert_eq!(
                        report.stats.fallback,
                        Some(FallbackReason::Symbolic(reason)),
                        "{q} (seed {seed})"
                    );
                }
                assert_eq!(report.guarantee, Guarantee::Exact, "{q} (seed {seed})");
                assert_eq!(
                    report.answers,
                    truth(&db, Semantics::Cwa, &q),
                    "fallback answer must still be exact for {q} (seed {seed})"
                );
            }
            Err(e) => panic!("unexpected symbolic error: {e} ({q}, seed {seed})"),
        }
    }
}
