//! Differential fuzz harness for the physical-plan layer: the physical
//! executors replayed against the logical tree-walking interpreters on
//! random workloads, plus plan-snapshot tests locking the join-fusion
//! rewrites.
//!
//! Every strategy now executes a rewritten [`PhysicalPlan`] — hash joins
//! where the interpreters loop over `σ(A×B)`, hash set operators, pushed
//! selections. The rewrites are only sound if they preserve semantics under
//! **all three** row models, so this harness checks each of them, case by
//! case, across seeded random databases × random queries of every
//! [`QueryClass`], under both CWA and OWA where semantics matter:
//!
//! 1. plain tuples: `exec::execute` == `releval::engine::eval_unchecked`;
//! 2. the certain⁺/possible? pair: `exec::approx::execute_approx` ==
//!    `releval::approx::eval_approx_unchecked` (both sides);
//! 3. condition-carrying c-table rows: `exec::ctable::execute_ctable` ≡
//!    `ctables::algebra::eval_ctable_unchecked`, compared semantically (same
//!    instantiation in every world over an adequate domain);
//! 4. the streaming world oracle (physical per-world execution) against a
//!    materializing fold over the *logical* interpreter, CWA and OWA.
//!
//! The `FUZZ_CASES` environment variable scales the sweep, as in
//! `symbolic_differential.rs`; `FUZZ_CASES=1000` is the acceptance-grade
//! run.

use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_full_ra_query, random_positive_query,
    QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use incomplete_data::{ctables, relalgebra, releval, relmodel};

use ctables::ctable::ConditionalDatabase;
use relalgebra::physical::PhysicalPlan;
use relalgebra::predicate::{Operand, Predicate};
use releval::complete::eval_complete;
use releval::exec;
use releval::worlds::{enumerate_worlds, stream_certain_answer, WorldOptions};
use relmodel::valuation::ValuationEnumerator;

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

fn fuzz_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 2 + (seed % 4) as usize,
        domain_size: 3 + (seed % 3) as usize,
        distinct_nulls: (seed % 4) as usize,
        null_rate_percent: (seed * 17 % 60) as u32,
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

fn fuzz_query(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &config),
        QueryClass::RaCwa => random_division_query(&schema, &config),
        QueryClass::FullRa => random_full_ra_query(&schema, &config),
    }
}

/// Physical plain execution == the logical tree-walking interpreter, on
/// every generated (database, query) pair. Both use syntactic equality, so
/// the comparison is exact relation equality.
#[test]
fn plain_physical_matches_logical_interpreter() {
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(5).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let physical = exec::execute(plan.physical(), &db);
            let logical = releval::engine::eval_unchecked(&q, &db).into_owned();
            assert_eq!(
                physical, logical,
                "MISMATCH physical vs logical for {q} ({class}, seed {seed}) over\n{db}"
            );
        }
    }
}

/// Physical pair execution == the logical pair evaluator, both sides.
#[test]
fn approx_physical_matches_logical_pair_evaluator() {
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed.wrapping_add(0xa11ce));
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(7).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let physical = exec::approx::execute_approx(plan.physical(), &db);
            let logical = releval::approx::eval_approx_unchecked(&q, &db);
            assert_eq!(
                physical.certain, logical.certain,
                "certain side diverged for {q} ({class}, seed {seed}) over\n{db}"
            );
            assert_eq!(
                physical.possible, logical.possible,
                "possible side diverged for {q} ({class}, seed {seed}) over\n{db}"
            );
        }
    }
}

/// Physical c-table execution ≡ the logical Imieliński–Lipski algebra,
/// compared semantically: identical instantiations in every world over an
/// adequate domain. (Structural comparison is too strong — the physical
/// executor prunes rows whose conditions the logical algebra only
/// discharges in its final simplification.)
#[test]
fn ctable_physical_matches_logical_algebra() {
    // The valuation sweep is |domain|^|nulls| per case; cap the per-case
    // database size so the acceptance-grade FUZZ_CASES=1000 run stays fast.
    for seed in 0..fuzz_cases() {
        let db = fuzz_db(seed.wrapping_add(0xc7ab1e));
        if db.null_ids().len() > 3 {
            continue;
        }
        let cdb = ConditionalDatabase::from_database(&db);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(11).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let physical = exec::ctable::execute_ctable(plan.physical(), &cdb);
            let logical = ctables::algebra::eval_ctable_unchecked(&q, &cdb);
            let mut nulls = cdb.null_ids();
            nulls.extend(physical.null_ids());
            nulls.extend(logical.null_ids());
            let domain = cdb.adequate_domain(&q.constants(), 1);
            for v in ValuationEnumerator::new(nulls, domain) {
                assert_eq!(
                    physical.instantiate(&v),
                    logical.instantiate(&v),
                    "c-table instantiations diverge for {q} ({class}, seed {seed}) over\n{db}"
                );
            }
        }
    }
}

/// The streaming world oracle (lower once, execute the physical plan per
/// world) against a materializing fold over the **logical** interpreter —
/// CWA and OWA, every class. This is the plan-once-execute-per-world path
/// the worlds strategy ships.
#[test]
fn worlds_physical_fold_matches_logical_fold_under_both_semantics() {
    let cases = fuzz_cases().min(128);
    for seed in 0..cases {
        let db = fuzz_db(seed.wrapping_add(0x0f0));
        if db.null_ids().len() > 3 {
            continue; // keep the materializing baseline affordable
        }
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(13).wrapping_add(class as u64));
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            for semantics in [Semantics::Cwa, Semantics::Owa] {
                let opts = WorldOptions::default();
                let streamed = stream_certain_answer(&plan, &db, semantics, &opts).unwrap();
                let worlds = enumerate_worlds(&q, &db, semantics, &opts).unwrap();
                let baseline = worlds
                    .iter()
                    .map(|w| eval_complete(&q, w).unwrap())
                    .reduce(|a, b| a.intersection(&b))
                    .unwrap();
                if streamed.early_exit {
                    // Early exit only ever fires on an empty certain answer.
                    assert!(
                        baseline.is_empty(),
                        "early exit on non-empty answer for {q} ({class}, {semantics}, seed {seed})"
                    );
                } else {
                    assert_eq!(
                        streamed.answers, baseline,
                        "MISMATCH streamed-physical vs logical fold for {q} \
                         ({class}, {semantics}, seed {seed}) over\n{db}"
                    );
                }
            }
        }
    }
}

/// The per-plan operator telemetry reaches the engine report, and the plan
/// text is the explain rendering of what actually ran.
#[test]
fn engine_reports_plan_text_and_operator_stats() {
    let db = relmodel::builder::orders_and_payments_example();
    let report = Engine::new(&db).plan_text("project[#0](Order)").unwrap();
    assert_eq!(report.stats.plan_text, "π[#0]\n  scan Order\n");
    let ops = report.stats.physical_ops.expect("naive runs physically");
    assert!(ops.operators >= 2);
    // The 3VL baseline keeps its own deliberately naïve interpreter.
    let baseline = Engine::new(&db)
        .baseline_3vl(&parse("project[#0](Order)").unwrap())
        .unwrap();
    assert!(baseline.stats.physical_ops.is_none());
    assert!(!baseline.stats.plan_text.is_empty());
}

/// Plan snapshots: the join-fusion rewrites, locked via explain output.
#[test]
fn plan_snapshots_lock_join_fusion() {
    let schema = Schema::builder()
        .relation("R", &["a", "b"])
        .relation("S", &["b", "c"])
        .build();
    // The standard derived equi-join form fuses into a hash join.
    let join = RaExpr::relation("R").equi_join(RaExpr::relation("S"), &[(1, 0)], 2);
    let plan = PhysicalPlan::lower(&join, &schema).unwrap();
    assert_eq!(
        plan.explain(),
        "hash-join [l#1 = r#0]\n  scan R\n  scan S\n"
    );

    // Local conjuncts split to the operands; cross inequalities stay
    // residual; the projection stays on top.
    let q = RaExpr::relation("R")
        .product(RaExpr::relation("S"))
        .select(
            Predicate::eq(Operand::col(1), Operand::col(2))
                .and(Predicate::eq(Operand::col(0), Operand::int(1)))
                .and(Predicate::neq(Operand::col(3), Operand::col(0))),
        )
        .project(vec![0, 3]);
    let plan = PhysicalPlan::lower(&q, &schema).unwrap();
    assert_eq!(
        plan.explain(),
        "π[#0,#3]\n  hash-join [l#1 = r#0] residual σ[#3 <> #0]\n    σ[#0 = 1]\n      scan R\n    scan S\n"
    );

    // A product with no cross equality stays a (filtered) nested product.
    let q = RaExpr::relation("R")
        .product(RaExpr::relation("S"))
        .select(Predicate::neq(Operand::col(0), Operand::col(2)));
    let plan = PhysicalPlan::lower(&q, &schema).unwrap();
    assert!(!plan.has_hash_join());
    assert_eq!(plan.explain(), "σ[#0 <> #2]\n  ×\n    scan R\n    scan S\n");
}
