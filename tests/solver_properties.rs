//! Property tests for the condition solver: on random conditions over a
//! mixed null/constant vocabulary, `simplify` and the DNF + congruence
//! closure decision procedure must agree with brute-force valuation
//! enumeration over the adequate finite domain (the same expansion
//! machinery `ctables::verify` uses for the strong-representation checks).
//!
//! The constant pool deliberately contains `Int(1)` **and** `Str("1")` —
//! the distinct-constant regression class from PR 2, where anything stringly
//! (display-keyed dedup, a solver that compares renderings) silently
//! conflates two different values.

use ctables::condition::solver::{
    satisfiable_by_enumeration, valid_by_enumeration, CertaintySolver, SolverOptions,
};
use ctables::condition::Condition;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relmodel::valuation::{domain_with_fresh, ValuationEnumerator};
use relmodel::value::Value;

/// The value vocabulary random conditions draw from: a few nulls, a few
/// integers, and the `Int(1)` / `Str("1")` near-collision pair.
fn random_value(rng: &mut StdRng) -> Value {
    match rng.gen_range(0..6u32) {
        0 | 1 => Value::null(rng.gen_range(0..3u64)),
        2 => Value::int(rng.gen_range(0..3i64)),
        3 => Value::int(1),
        4 => Value::str("1"),
        _ => Value::str("a"),
    }
}

fn random_condition(rng: &mut StdRng, depth: u32) -> Condition {
    if depth == 0 || rng.gen_bool(0.4) {
        let (a, b) = (random_value(rng), random_value(rng));
        return if rng.gen_bool(0.5) {
            Condition::eq(a, b)
        } else {
            Condition::neq(a, b)
        };
    }
    match rng.gen_range(0..3u32) {
        0 => {
            let n = rng.gen_range(2..=3usize);
            (0..n).fold(Condition::True, |acc, _| {
                acc.and(random_condition(rng, depth - 1))
            })
        }
        1 => {
            let n = rng.gen_range(2..=3usize);
            (0..n).fold(Condition::False, |acc, _| {
                acc.or(random_condition(rng, depth - 1))
            })
        }
        _ => random_condition(rng, depth - 1).negate(),
    }
}

fn cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300)
}

#[test]
fn solver_agrees_with_enumeration_on_validity_and_satisfiability() {
    for seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(seed);
        let c = random_condition(&mut rng, 3);
        let mut solver = CertaintySolver::new(SolverOptions::default());
        let valid = solver
            .is_valid(&c)
            .unwrap_or_else(|p| panic!("solver punted on a small condition: {p} ({c})"));
        assert_eq!(
            valid,
            valid_by_enumeration(&c),
            "validity mismatch for {c} (seed {seed})"
        );
        let sat = solver.is_satisfiable(&c).unwrap();
        assert_eq!(
            sat,
            satisfiable_by_enumeration(&c),
            "satisfiability mismatch for {c} (seed {seed})"
        );
        // Internal consistency: valid ⇒ satisfiable, and c valid ⇔ ¬c unsat.
        assert!(!valid || sat, "valid but unsatisfiable? {c}");
        assert_eq!(
            solver.is_satisfiable(&c.clone().negate()).unwrap(),
            !valid,
            "negation duality broken for {c}"
        );
    }
}

#[test]
fn simplify_preserves_semantics_under_every_valuation() {
    for seed in 0..cases() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(0xdead));
        let c = random_condition(&mut rng, 3);
        let simplified = c.simplify();
        let nulls = c.null_ids();
        let domain = domain_with_fresh(&c.constants(), nulls.len() + 1);
        for v in ValuationEnumerator::new(nulls, domain) {
            assert_eq!(
                c.eval(&v),
                simplified.eval(&v),
                "simplify changed semantics of {c} → {simplified} at {v}"
            );
        }
    }
}

#[test]
fn entailment_agrees_with_enumeration() {
    for seed in 0..cases().min(150) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31).wrapping_add(7));
        let premise = random_condition(&mut rng, 2);
        let conclusion = random_condition(&mut rng, 2);
        let mut solver = CertaintySolver::new(SolverOptions::default());
        let entailed = solver.entails(&premise, &conclusion).unwrap();
        // premise ⊨ conclusion ⇔ (¬premise ∨ conclusion) is valid.
        let implication = premise.clone().negate().or(conclusion.clone());
        assert_eq!(
            entailed,
            valid_by_enumeration(&implication),
            "entailment mismatch: {premise} ⊨ {conclusion} (seed {seed})"
        );
    }
}

#[test]
fn int_one_and_str_one_never_conflate() {
    // The regression class, stated directly: a null forced to both Int(1)
    // and Str("1") is unsatisfiable; forced to one, it is not the other.
    let mut solver = CertaintySolver::new(SolverOptions::default());
    let both = Condition::eq(Value::null(0), Value::int(1))
        .and(Condition::eq(Value::null(0), Value::str("1")));
    assert!(!solver.is_satisfiable(&both).unwrap());
    assert!(!satisfiable_by_enumeration(&both));
    let implies_not_str = solver
        .entails(
            &Condition::eq(Value::null(0), Value::int(1)),
            &Condition::neq(Value::null(0), Value::str("1")),
        )
        .unwrap();
    assert!(implies_not_str);
    // And the display strings really do collide — the trap is real.
    assert_eq!(Value::int(1).to_string(), Value::str("1").to_string());
}
