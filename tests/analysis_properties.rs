//! Property tests for the static analyzer (`relalgebra::analysis`): the
//! abstract interpretation must *refine* the syntactic classification, never
//! contradict it. Violations here are soundness bugs — the analyzer is the
//! single source of truth `classify` and the engine dispatch are built on.
//!
//! The properties, swept over every generator class × a spread of censuses:
//!
//! 1. **Wrapper consistency** — against the pessimistic census, the
//!    analyzer's root class *is* `classify(q)`, and `has_null_literal` is
//!    `has_incomplete_values(q)`.
//! 2. **Refinement, never coarsening** — wherever the class theorem proves
//!    naïve evaluation sound, `certainty_preserving` agrees; the analyzer
//!    only ever *adds* certainty (via groundness / monotonicity), it never
//!    loses the theorem.
//! 3. **Split refinement** — `split_class ≤ class` in the `QueryClass`
//!    order: inlining ground subtrees can only move a query *down* the
//!    hierarchy.
//! 4. **Census monotonicity** — facts proved against the pessimistic census
//!    survive against any real census: pessimistic-ground ⇒ ground,
//!    pessimistic-certainty-preserving ⇒ certainty-preserving. (Monotone
//!    and constant are census-independent.)

use datagen::random::random_schema;
use datagen::{
    random_database, random_database_with_null_free, random_division_query, random_full_ra_query,
    random_mixed_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use relalgebra::analysis::{analyze, NullCensus};
use relalgebra::classify::{classify, has_incomplete_values};

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Every generator in the workshop, including the mixed one built for the
/// subtree-split upgrade.
fn queries_for_seed(seed: u64) -> Vec<RaExpr> {
    let schema = random_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    vec![
        random_positive_query(&schema, &config),
        random_division_query(&schema, &config),
        random_full_ra_query(&schema, &config),
        random_mixed_query(&schema, &config),
    ]
}

/// A spread of censuses per seed: pessimistic, a measured incomplete
/// database, a measured complete database, and the shaped null-free one.
fn censuses_for_seed(seed: u64) -> Vec<NullCensus> {
    let incomplete = random_database(&RandomDbConfig {
        distinct_nulls: 1 + (seed % 3) as usize,
        null_rate_percent: 10 + (seed * 7 % 60) as u32,
        seed,
        ..Default::default()
    });
    let complete = random_database(&RandomDbConfig {
        null_rate_percent: 0,
        seed,
        ..Default::default()
    });
    let shaped = random_database_with_null_free(
        &RandomDbConfig {
            null_rate_percent: 50,
            seed,
            ..Default::default()
        },
        &["S", "T"],
    );
    vec![
        NullCensus::pessimistic(),
        NullCensus::of_database(&incomplete),
        NullCensus::of_database(&complete),
        NullCensus::of_database(&shaped),
    ]
}

#[test]
fn analyzer_root_class_is_the_syntactic_classification() {
    for seed in 0..fuzz_cases() {
        for q in queries_for_seed(seed) {
            let facts = analyze(&q, &NullCensus::pessimistic()).root().clone();
            assert_eq!(facts.class, classify(&q), "seed {seed}: {q}");
            assert_eq!(
                facts.has_null_literal,
                has_incomplete_values(&q),
                "seed {seed}: {q}"
            );
        }
    }
}

#[test]
fn certainty_preservation_refines_the_class_theorem_never_coarsens_it() {
    use relmodel::Semantics;
    for seed in 0..fuzz_cases() {
        for q in queries_for_seed(seed) {
            let class = classify(&q);
            for census in censuses_for_seed(seed) {
                let facts = analyze(&q, &census).root().clone();
                for semantics in [Semantics::Cwa, Semantics::Owa] {
                    if class.naive_evaluation_sound(semantics) {
                        assert!(
                            facts.certainty_preserving(semantics),
                            "analyzer lost the class theorem for {q} \
                             ({class}, {semantics:?}, seed {seed})"
                        );
                    }
                }
                // Split refinement: inlining only moves down the hierarchy.
                assert!(
                    facts.split_class <= facts.class,
                    "split_class coarsened {q} (seed {seed})"
                );
            }
        }
    }
}

#[test]
fn facts_proved_pessimistically_survive_every_real_census() {
    use relmodel::Semantics;
    for seed in 0..fuzz_cases() {
        for q in queries_for_seed(seed) {
            let pessimistic = analyze(&q, &NullCensus::pessimistic()).root().clone();
            for census in censuses_for_seed(seed) {
                let facts = analyze(&q, &census).root().clone();
                // Monotonicity and constancy are census-independent facts of
                // the expression.
                assert_eq!(facts.monotone, pessimistic.monotone, "seed {seed}: {q}");
                assert_eq!(facts.constant, pessimistic.constant, "seed {seed}: {q}");
                if pessimistic.ground {
                    assert!(facts.ground, "groundness lost on {q} (seed {seed})");
                }
                for semantics in [Semantics::Cwa, Semantics::Owa] {
                    if pessimistic.certainty_preserving(semantics) {
                        assert!(
                            facts.certainty_preserving(semantics),
                            "census weakened {q} ({semantics:?}, seed {seed})"
                        );
                    }
                }
            }
        }
    }
}

/// Groundness is what it claims to be: a ground query (per the measured
/// census) evaluates naïvely to the exact CWA certain answer, full RA or
/// not. Checked against the world oracle on small instances.
#[test]
fn ground_facts_mean_world_invariance() {
    use releval::worlds::{stream_certain_answer, WorldOptions};
    for seed in 0..fuzz_cases().min(24) {
        let db = random_database(&RandomDbConfig {
            tuples_per_relation: 3,
            distinct_nulls: (seed % 3) as usize,
            null_rate_percent: (seed * 11 % 50) as u32,
            seed,
            ..Default::default()
        });
        let census = NullCensus::of_database(&db);
        for q in queries_for_seed(seed) {
            let facts = analyze(&q, &census).root().clone();
            if !facts.ground {
                continue;
            }
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let naive = releval::exec::execute(plan.physical(), &db).complete_part();
            let oracle = stream_certain_answer(
                &plan,
                &db,
                relmodel::Semantics::Cwa,
                &WorldOptions::default(),
            )
            .unwrap();
            assert_eq!(
                naive, oracle.answers,
                "ground claim violated for {q} (seed {seed}) over\n{db}"
            );
        }
    }
}
