//! Cross-crate integration tests: parser → algebra → evaluation → certainty,
//! and exchange → certain answers, exercised together the way a user of the
//! umbrella crate would.

use incomplete_data::prelude::*;
use qparser::parse;
use relalgebra::classify::classify;
use relmodel::builder::{difference_example, orders_and_payments_example};
use relmodel::{DatabaseBuilder, Semantics, Tuple, Value};
use releval::worlds::{certain_boolean_worlds, WorldOptions};

#[test]
fn parsed_queries_evaluate_and_classify_consistently() {
    let db = orders_and_payments_example();
    let cases = [
        ("project[#0](Order)", QueryClass::Positive, 2usize),
        ("project[#1](Pay) intersect project[#0](Order)", QueryClass::Positive, 0),
        ("project[#0](Order) minus project[#1](Pay)", QueryClass::FullRa, 0),
    ];
    for (text, class, certain_len) in cases {
        let q = parse(text).unwrap();
        assert_eq!(classify(&q), class, "classification of {text}");
        let naive = certain_answer_naive(&q, &db).unwrap();
        let truth = certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
        if class == QueryClass::Positive {
            assert_eq!(naive, truth, "naïve evaluation must be exact for {text}");
        }
        assert_eq!(truth.len(), certain_len, "certain answer size for {text}");
    }
}

#[test]
fn the_paper_intro_story_end_to_end() {
    let db = orders_and_payments_example();
    // SQL says nobody is unpaid.
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
    assert!(eval_3vl(&unpaid, &db).unwrap().is_empty());
    // But an unpaid order certainly exists.
    assert!(certain_boolean_worlds(
        &unpaid.clone().project(vec![]),
        &db,
        Semantics::Cwa,
        &WorldOptions::default()
    )
    .unwrap());
    // And the tautology query certainly returns pid1.
    let taut = parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").unwrap();
    let certain = certain_answer_worlds(&taut, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
    assert!(certain.contains(&Tuple::strs(&["pid1"])));
    assert!(eval_3vl(&taut, &db).unwrap().is_empty());
}

#[test]
fn certain_answers_facade_matches_standalone_functions() {
    let db = difference_example();
    let q = parse("R union S").unwrap();
    let ca = CertainAnswers::new(Semantics::Cwa);
    assert_eq!(ca.certain_tuples(&q, &db).unwrap(), certain_answer_naive(&q, &db).unwrap());
    assert_eq!(
        ca.ground_truth(&q, &db).unwrap(),
        certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap()
    );
    assert!(ca.naive_is_correct(&q, &db).unwrap());
    assert!(ca.naive_answer_is_glb(&q, &db).unwrap());
    let k = ca.certain_knowledge(&q, &db).unwrap();
    assert!(k.is_sentence());
}

#[test]
fn exchange_then_query_certainly() {
    use exchange::prelude::*;
    let mapping = SchemaMapping::order_to_customer_example();
    let source = DatabaseBuilder::new()
        .relation("Order", &["o_id", "product"])
        .strs("Order", &["o1", "widget"])
        .strs("Order", &["o2", "widget"])
        .build();
    let q = parse("project[#1](Pref)").unwrap();
    let certain = certain_answer_exchange(&source, &mapping, &q).unwrap();
    assert_eq!(certain.len(), 1);
    assert!(certain.contains(&Tuple::strs(&["widget"])));

    // The chased target is a solution and is universal for a concrete solution.
    let chased = chase(&source, &mapping).target;
    assert!(is_solution(&source, &chased, &mapping));
    let concrete = DatabaseBuilder::new()
        .relation("Cust", &["cust"])
        .relation("Pref", &["cust", "product"])
        .strs("Cust", &["c1"])
        .strs("Pref", &["c1", "widget"])
        .build();
    assert!(is_solution(&source, &concrete, &mapping));
    assert!(is_universal_for(&chased, &[concrete]));
}

#[test]
fn conditional_tables_agree_with_world_semantics_across_crates() {
    use ctables::prelude::*;
    let db = orders_and_payments_example();
    let cdb = ConditionalDatabase::from_database(&db);
    for text in [
        "project[#0](Order) minus project[#1](Pay)",
        "project[#1](Pay) intersect project[#0](Order)",
        "project[#0](Order) union project[#1](Pay)",
    ] {
        let q = parse(text).unwrap();
        assert!(
            strong_representation_holds(&q, &cdb, 2).unwrap(),
            "strong representation must hold for {text}"
        );
    }
}

#[test]
fn three_valued_logic_is_sound_for_positive_queries() {
    // For positive queries, every tuple SQL returns is a certain answer
    // (no false positives); it may miss certain answers that involve nulls.
    let db = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .ints("R", &[1, 2])
        .tuple("R", vec![Value::int(3), Value::null(0)])
        .build();
    let q = parse("project[#0](select[#1 = 2](R))").unwrap();
    let sql = eval_3vl(&q, &db).unwrap();
    let truth = certain_answer_worlds(&q, &db, Semantics::Cwa, &WorldOptions::default()).unwrap();
    assert!(sql.is_subset(&truth));
}

#[test]
fn division_story_end_to_end() {
    let db = DatabaseBuilder::new()
        .relation("Supplies", &["supplier", "part"])
        .relation("Part", &["part"])
        .strs("Supplies", &["acme", "bolt"])
        .strs("Supplies", &["acme", "nut"])
        .tuple("Supplies", vec![Value::str("globex"), Value::null(0)])
        .strs("Supplies", &["globex", "bolt"])
        .strs("Part", &["bolt"])
        .strs("Part", &["nut"])
        .build();
    let q = parse("Supplies divide Part").unwrap();
    assert_eq!(classify(&q), QueryClass::RaCwa);
    let ca = CertainAnswers::new(Semantics::Cwa);
    assert!(ca.naive_is_correct(&q, &db).unwrap());
    let answer = ca.certain_tuples(&q, &db).unwrap();
    assert_eq!(answer.len(), 1);
    assert!(answer.contains(&Tuple::strs(&["acme"])));
}
