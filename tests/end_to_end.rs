//! Cross-crate integration tests: parser → engine → certainty, and
//! exchange → certain answers, exercised together the way a user of the
//! umbrella crate would — every certain answer obtained through the
//! [`Engine`] front door.

use incomplete_data::prelude::*;
use relmodel::builder::{difference_example, orders_and_payments_example};
use relmodel::DatabaseBuilder;

/// Exhaustive engine over `db` (ground truth allowed within budget).
fn exhaustive(db: &Database) -> Engine<&Database> {
    Engine::new(db).options(EngineOptions::exhaustive())
}

#[test]
fn parsed_queries_evaluate_and_classify_consistently() {
    let db = orders_and_payments_example();
    let engine = exhaustive(&db);
    let cases = [
        ("project[#0](Order)", QueryClass::Positive, 2usize),
        (
            "project[#1](Pay) intersect project[#0](Order)",
            QueryClass::Positive,
            0,
        ),
        (
            "project[#0](Order) minus project[#1](Pay)",
            QueryClass::FullRa,
            0,
        ),
    ];
    for (text, class, certain_len) in cases {
        let plan = parse_and_plan(text, db.schema()).unwrap();
        assert_eq!(plan.class(), class, "classification of {text}");
        let report = engine.plan_prepared(&plan).unwrap();
        assert_eq!(
            report.answers.len(),
            certain_len,
            "certain answer size for {text}"
        );
        assert_eq!(
            report.guarantee,
            Guarantee::Exact,
            "exhaustive mode is exact for {text}"
        );
        if class == QueryClass::Positive {
            assert_eq!(
                report.strategy,
                StrategyKind::NaiveExact,
                "dispatch for {text}"
            );
            // Naïve evaluation must agree with ground truth on this class.
            let q = plan.expr();
            let naive = engine
                .plan_with(StrategyKind::NaiveExact, q)
                .unwrap()
                .answers;
            let truth = engine.ground_truth(q).unwrap().answers;
            assert_eq!(naive, truth, "naïve evaluation must be exact for {text}");
        } else {
            // Beyond the naïve fragment the planner now answers symbolically
            // (exact, no worlds) even in exhaustive mode — and the symbolic
            // answer must equal the forced ground truth.
            assert_eq!(
                report.strategy,
                StrategyKind::SymbolicCTable,
                "dispatch for {text}"
            );
            let truth = engine.ground_truth(plan.expr()).unwrap().answers;
            assert_eq!(report.answers, truth, "symbolic == worlds for {text}");
        }
    }
}

#[test]
fn default_engine_guarantee_is_exact_iff_a_theorem_backs_it() {
    // The acceptance criterion of the redesign, updated for the symbolic
    // strategy: with default options the report claims `exact` precisely
    // when the paper's naïve-evaluation theorem applies **or** the strong
    // representation theorem does (CWA, where the c-table strategy is exact
    // for every class).
    let db = orders_and_payments_example();
    let division_db = DatabaseBuilder::new()
        .relation("Supplies", &["supplier", "part"])
        .relation("Part", &["part"])
        .strs("Supplies", &["acme", "bolt"])
        .strs("Part", &["bolt"])
        .build();
    let cases: [(&Database, &str); 4] = [
        (&db, "project[#0](Order)"),
        (&db, "project[#1](Pay) intersect project[#0](Order)"),
        (&db, "project[#0](Order) minus project[#1](Pay)"),
        (&division_db, "Supplies divide Part"),
    ];
    for (database, text) in cases {
        for semantics in [Semantics::Owa, Semantics::Cwa] {
            let report = Engine::new(database)
                .semantics(semantics)
                .plan_text(text)
                .unwrap();
            // (Presumes literal-free queries over budget-sized databases —
            // see tests/engine_properties.rs for the caveat.)
            let theorem_backed =
                report.class.naive_evaluation_sound(semantics) || semantics == Semantics::Cwa;
            assert_eq!(
                report.guarantee == Guarantee::Exact,
                theorem_backed,
                "guarantee/theorem mismatch for {text} under {semantics}"
            );
        }
    }
}

#[test]
fn the_paper_intro_story_end_to_end() {
    let db = orders_and_payments_example();
    let engine = exhaustive(&db);
    // SQL says nobody is unpaid — and the engine labels that answer as worthless.
    let unpaid = parse("project[#0](Order) minus project[#1](Pay)").unwrap();
    let sql = engine.baseline_3vl(&unpaid).unwrap();
    assert!(sql.object_answer.unwrap().is_empty());
    assert_eq!(sql.guarantee, Guarantee::NoGuarantee);
    // But an unpaid order certainly exists.
    let exists = engine.plan(&unpaid.clone().project(vec![])).unwrap();
    assert_eq!(exists.certain_true(), Some(true));
    // And the tautology query certainly returns pid1.
    let taut = parse("project[#0](select[#1 = 'oid1' or #1 != 'oid1'](Pay))").unwrap();
    let certain = engine.plan(&taut).unwrap();
    assert!(certain.answers.contains(&Tuple::strs(&["pid1"])));
    assert!(engine
        .baseline_3vl(&taut)
        .unwrap()
        .object_answer
        .unwrap()
        .is_empty());
}

#[test]
fn certain_answers_facade_matches_the_engine() {
    let db = difference_example();
    let q = parse("R union S").unwrap();
    let ca = CertainAnswers::new(Semantics::Cwa);
    let engine = exhaustive(&db);
    assert_eq!(
        ca.certain_tuples(&q, &db).unwrap(),
        engine
            .plan_with(StrategyKind::NaiveExact, &q)
            .unwrap()
            .answers
    );
    assert_eq!(
        ca.ground_truth(&q, &db).unwrap(),
        engine.ground_truth(&q).unwrap().answers
    );
    assert!(ca.naive_is_correct(&q, &db).unwrap());
    assert!(ca.naive_answer_is_glb(&q, &db).unwrap());
    let k = ca.certain_knowledge(&q, &db).unwrap();
    assert!(k.is_sentence());
}

#[test]
fn exchange_then_query_certainly() {
    use exchange::prelude::*;
    let mapping = SchemaMapping::order_to_customer_example();
    let source = DatabaseBuilder::new()
        .relation("Order", &["o_id", "product"])
        .strs("Order", &["o1", "widget"])
        .strs("Order", &["o2", "widget"])
        .build();
    let q = parse("project[#1](Pref)").unwrap();
    let certain = certain_answer_exchange(&source, &mapping, &q).unwrap();
    assert_eq!(certain.len(), 1);
    assert!(certain.contains(&Tuple::strs(&["widget"])));

    // The chased target is a solution and is universal for a concrete solution.
    let chased = chase(&source, &mapping).target;
    assert!(is_solution(&source, &chased, &mapping));
    let concrete = DatabaseBuilder::new()
        .relation("Cust", &["cust"])
        .relation("Pref", &["cust", "product"])
        .strs("Cust", &["c1"])
        .strs("Pref", &["c1", "widget"])
        .build();
    assert!(is_solution(&source, &concrete, &mapping));
    assert!(is_universal_for(&chased, &[concrete]));
}

#[test]
fn conditional_tables_agree_with_world_semantics_across_crates() {
    use ctables::prelude::*;
    let db = orders_and_payments_example();
    let cdb = ConditionalDatabase::from_database(&db);
    for text in [
        "project[#0](Order) minus project[#1](Pay)",
        "project[#1](Pay) intersect project[#0](Order)",
        "project[#0](Order) union project[#1](Pay)",
    ] {
        let q = parse(text).unwrap();
        assert!(
            strong_representation_holds(&q, &cdb, 2).unwrap(),
            "strong representation must hold for {text}"
        );
    }
}

#[test]
fn three_valued_logic_is_sound_for_positive_queries() {
    // For positive queries, every tuple SQL returns is a certain answer
    // (no false positives); it may miss certain answers that involve nulls.
    let db = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .ints("R", &[1, 2])
        .tuple("R", vec![Value::int(3), Value::null(0)])
        .build();
    let engine = exhaustive(&db);
    let q = parse("project[#0](select[#1 = 2](R))").unwrap();
    let sql = engine.baseline_3vl(&q).unwrap().answers;
    let truth = engine.ground_truth(&q).unwrap().answers;
    assert!(sql.is_subset(&truth));
}

#[test]
fn division_story_end_to_end() {
    let db = DatabaseBuilder::new()
        .relation("Supplies", &["supplier", "part"])
        .relation("Part", &["part"])
        .strs("Supplies", &["acme", "bolt"])
        .strs("Supplies", &["acme", "nut"])
        .tuple("Supplies", vec![Value::str("globex"), Value::null(0)])
        .strs("Supplies", &["globex", "bolt"])
        .strs("Part", &["bolt"])
        .strs("Part", &["nut"])
        .build();
    // Division by a base relation is RA_cwa: the engine dispatches straight to
    // naïve evaluation under CWA and labels the answer exact.
    let report = Engine::new(&db).plan_text("Supplies divide Part").unwrap();
    assert_eq!(report.class, QueryClass::RaCwa);
    assert_eq!(report.strategy, StrategyKind::NaiveExact);
    assert_eq!(report.guarantee, Guarantee::Exact);
    assert_eq!(report.answers.len(), 1);
    assert!(report.answers.contains(&Tuple::strs(&["acme"])));
    // The façade agrees with ground truth.
    let q = parse("Supplies divide Part").unwrap();
    let ca = CertainAnswers::new(Semantics::Cwa);
    assert!(ca.naive_is_correct(&q, &db).unwrap());
    assert_eq!(ca.certain_tuples(&q, &db).unwrap(), report.answers);
}
