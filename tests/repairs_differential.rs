//! Differential fuzz harness for consistent query answering: the streaming
//! repair fold and the conflict-free-core approximation replayed against a
//! brute-force oracle on random inconsistent workloads.
//!
//! The oracle is maximally independent of the code under test: it
//! enumerates **every subset** of the database's tuples, keeps the
//! consistent ones (via `relmodel`'s violation detection only — no conflict
//! graph), and takes the ⊆-maximal survivors as the repairs; per-repair
//! certain answers come from the streaming world oracle. Against that
//! ground truth the harness asserts, seed by seed:
//!
//! 1. `RepairIter` yields exactly the oracle's repair set;
//! 2. the streaming fold's consistent answer equals the oracle's
//!    `⋂ certain(Q, R)` — for queries of every class, with and without
//!    nulls in the data;
//! 3. the conflict-free-core approximation is a **subset** of the exact
//!    consistent answer (soundness), again for every class;
//! 4. engine reports under `Semantics::ConsistentAnswers` honour their
//!    guarantee: `Exact` matches the oracle, `Sound` never overclaims —
//!    including when a starved repair budget forces the core fallback.
//!
//! `FUZZ_CASES` scales the sweep (default: CI-sized smoke);
//! `FUZZ_CASES=1000 cargo test --release --test repairs_differential` is
//! the acceptance-grade run.

use std::collections::BTreeSet;

use datagen::{
    random_division_query, random_full_ra_query, random_inconsistent_database,
    random_positive_query, InconsistentDbConfig, QueryGenConfig,
};
use incomplete_data::prelude::*;
use incomplete_data::repairs::{
    core_consistent_answer, enumerate_repairs, stream_consistent_answer, ConflictGraph, RepairIter,
    RepairOptions,
};
use releval::worlds::{certain_answer_worlds, WorldOptions};

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

/// A random inconsistent database whose shape (size, violation rate, null
/// rate) varies with the seed — small enough for the all-subsets oracle.
fn fuzz_db(seed: u64) -> Database {
    random_inconsistent_database(&InconsistentDbConfig {
        tuples_per_relation: 2 + (seed % 2) as usize,
        domain_size: 3 + (seed % 3) as usize,
        violation_rate_percent: (seed * 17 % 60) as u32,
        null_rate_percent: (seed * 7 % 35) as u32,
        distinct_nulls: (seed % 3) as usize,
        seed: seed.wrapping_mul(0x9e37_79b9),
    })
}

fn fuzz_query(class: QueryClass, seed: u64) -> RaExpr {
    let schema = datagen::inconsistent_schema();
    let config = QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &config),
        QueryClass::RaCwa => random_division_query(&schema, &config),
        QueryClass::FullRa => random_full_ra_query(&schema, &config),
    }
}

/// All tuples of the database as (relation, tuple) facts, in a fixed order.
fn facts(db: &Database) -> Vec<(String, Tuple)> {
    db.iter()
        .flat_map(|(name, rel)| rel.iter().map(move |t| (name.to_owned(), t.clone())))
        .collect()
}

/// The sub-database selecting the facts whose bit is set in `mask`.
fn sub_db(db: &Database, facts: &[(String, Tuple)], mask: u64) -> Database {
    let mut out = Database::new(db.schema().clone());
    for (i, (name, tuple)) in facts.iter().enumerate() {
        if mask & (1 << i) != 0 {
            out.insert(name, tuple.clone()).unwrap();
        }
    }
    out
}

/// Brute-force repair oracle: every subset, filtered to consistent ones,
/// filtered to ⊆-maximal ones. Exponential and proud of it.
fn brute_force_repairs(db: &Database) -> BTreeSet<Database> {
    let fs = facts(db);
    let n = fs.len();
    assert!(n <= 16, "oracle workload too large: {n} tuples");
    let consistent: Vec<u64> = (0..(1u64 << n))
        .filter(|&mask| sub_db(db, &fs, mask).is_consistent())
        .collect();
    consistent
        .iter()
        .filter(|&&m| !consistent.iter().any(|&m2| m2 != m && m2 & m == m))
        .map(|&m| sub_db(db, &fs, m))
        .collect()
}

/// The oracle's consistent answer: fold the streaming **world** oracle
/// (already differentially validated in its own harness) over the
/// brute-force repair set.
fn oracle_consistent_answer(q: &RaExpr, repairs: &BTreeSet<Database>) -> Relation {
    repairs
        .iter()
        .map(|r| {
            certain_answer_worlds(q, r, Semantics::Cwa, &WorldOptions::default())
                .expect("oracle workloads fit the world budget")
        })
        .reduce(|a, b| a.intersection(&b))
        .expect("every database has at least one repair")
}

/// Harness part 1: the streaming enumerator yields exactly the brute-force
/// repair set, and the materializing helper agrees.
#[test]
fn repair_enumeration_matches_brute_force() {
    let cases = fuzz_cases();
    for seed in 0..cases {
        let db = fuzz_db(seed);
        let graph = ConflictGraph::build(&db);
        let expected = brute_force_repairs(&db);
        let streamed: BTreeSet<Database> = RepairIter::new(&db, &graph).collect();
        assert_eq!(
            streamed, expected,
            "MISMATCH repair sets (seed {seed}) over\n{db}"
        );
        let materialized = enumerate_repairs(&db, &graph, 1 << 16).unwrap();
        assert_eq!(materialized.len(), expected.len(), "seed {seed}");
        assert!(
            expected.len() as u128 <= graph.estimated_repairs(),
            "Moon–Moser bound must dominate (seed {seed}): {} repairs, bound {}",
            expected.len(),
            graph.estimated_repairs()
        );
    }
}

/// Harness part 2 + 3: the streaming fold equals the oracle fold, and the
/// core approximation is a sound subset — for every query class.
#[test]
fn consistent_answers_match_oracle_and_core_is_sound() {
    let cases = fuzz_cases();
    for seed in 0..cases {
        let db = fuzz_db(seed.wrapping_add(0xc0de));
        let graph = ConflictGraph::build(&db);
        let repairs = brute_force_repairs(&db);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(7).wrapping_add(class as u64));
            assert_eq!(relalgebra::classify::classify(&q), class, "generator drift");
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            let truth = oracle_consistent_answer(&q, &repairs);
            let fold =
                stream_consistent_answer(&plan, &db, &graph, &RepairOptions::default()).unwrap();
            assert_eq!(
                fold.answers, truth,
                "MISMATCH fold vs oracle for {q} ({class}, seed {seed}) over\n{db}"
            );
            let core = core_consistent_answer(&plan, &db, &graph);
            assert!(
                core.answers.is_subset(&truth),
                "UNSOUND core for {q} ({class}, seed {seed}): core {} ⊄ exact {} over\n{db}",
                core.answers,
                truth
            );
        }
    }
}

/// Harness part 4: engine reports under `ConsistentAnswers` never violate
/// their guarantee — on the planner's own dispatch *and* with a starved
/// repair budget forcing the core fallback.
#[test]
fn engine_consistent_guarantees_never_violated() {
    use incomplete_data::engine::Semantics as EngineSemantics;
    let cases = fuzz_cases();
    for seed in 0..cases {
        let db = fuzz_db(seed.wrapping_add(0xbeef));
        let repairs = brute_force_repairs(&db);
        for class in ALL_CLASSES {
            let q = fuzz_query(class, seed.wrapping_mul(11).wrapping_add(class as u64));
            let truth = oracle_consistent_answer(&q, &repairs);
            for options in [
                EngineOptions::default(),
                EngineOptions::default().with_max_repairs(1),
            ] {
                let report = Engine::new(&db)
                    .semantics(EngineSemantics::ConsistentAnswers)
                    .options(options)
                    .plan(&q)
                    .unwrap();
                let context = format!("{q} ({class}, seed {seed})");
                match report.guarantee {
                    Guarantee::Exact => {
                        assert_eq!(report.answers, truth, "Exact violated: {context}")
                    }
                    Guarantee::Sound => {
                        assert!(
                            report.answers.is_subset(&truth),
                            "Sound violated: {context}"
                        )
                    }
                    Guarantee::Complete => {
                        assert!(
                            truth.is_subset(&report.answers),
                            "Complete violated: {context}"
                        )
                    }
                    Guarantee::NoGuarantee => {}
                }
                // Dispatch bookkeeping: repair strategies only run on dirty
                // databases; a clean one must have delegated.
                if db.is_consistent() {
                    assert!(
                        !matches!(
                            report.strategy,
                            StrategyKind::RepairEnumeration | StrategyKind::ConflictFreeCore
                        ),
                        "clean database must delegate: {context}"
                    );
                    assert_eq!(report.stats.violations, Some(0), "{context}");
                } else {
                    assert!(report.stats.violations.unwrap() > 0, "{context}");
                    // The degraded core path must say why it degraded.
                    if report.strategy == StrategyKind::ConflictFreeCore {
                        assert!(report.stats.fallback.is_some(), "{context}");
                        assert_eq!(report.guarantee, Guarantee::Sound, "{context}");
                    }
                }
            }
        }
    }
}
