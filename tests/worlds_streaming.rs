//! Property tests for the streaming, parallel, early-exiting world engine:
//! on deterministic sweeps of random databases and queries, the streamed
//! certain answer must equal the materializing fold it replaced, early exit
//! must only ever fire on an empty certain answer, and the satellite bug
//! fixes (stringly world dedup, zero-world unsoundness, null-bearing query
//! literals) must hold end to end through the engine.

use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use relalgebra::ast::RaExpr;
use relalgebra::classify::QueryClass;
use relalgebra::plan::PlannedQuery;
use releval::complete::eval_complete;
use releval::worlds::{enumerate_worlds, stream_certain_answer, WorldOptions};
use releval::EvalError;
use relmodel::DatabaseBuilder;

fn small_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 3,
        domain_size: 4,
        distinct_nulls: 2,
        null_rate_percent: 30,
        seed,
    })
}

fn query_for(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    let cfg = |seed| QueryGenConfig {
        seed,
        ..Default::default()
    };
    match class {
        QueryClass::Positive => random_positive_query(&schema, &cfg(seed)),
        QueryClass::RaCwa => random_division_query(&schema, &cfg(seed)),
        QueryClass::FullRa => random_positive_query(&schema, &cfg(seed)).difference(
            random_positive_query(&schema, &cfg(seed.wrapping_add(1000))),
        ),
    }
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];
const CASES: u64 = 12;

/// The materializing baseline the streaming engine replaced: collect every
/// (structurally deduplicated) world, evaluate, intersect.
fn materializing_certain(
    q: &RaExpr,
    db: &Database,
    semantics: Semantics,
    opts: &WorldOptions,
) -> Relation {
    enumerate_worlds(q, db, semantics, opts)
        .expect("tiny instances fit the budget")
        .iter()
        .map(|w| eval_complete(q, w).expect("worlds are complete"))
        .reduce(|a, b| a.intersection(&b))
        .expect("at least one world")
}

/// Streaming ≡ materializing, across every query class, both semantics
/// (including OWA worlds that may grow), and several thread counts — and
/// early exit never fires unless the certain answer is empty.
#[test]
fn streaming_equals_materializing_everywhere() {
    for class in ALL_CLASSES {
        for seed in 0..CASES {
            let db = small_db(seed * 71 + 3);
            let q = query_for(class, seed * 17 + 5);
            let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
            for (semantics, owa_extra) in [
                (Semantics::Cwa, 0),
                (Semantics::Owa, 0),
                (Semantics::Owa, 1),
            ] {
                let base = WorldOptions {
                    max_owa_extra: owa_extra,
                    ..WorldOptions::default()
                };
                let expected = materializing_certain(&q, &db, semantics, &base);
                for threads in [1usize, 3] {
                    let opts = WorldOptions {
                        threads: Some(threads),
                        ..base
                    };
                    let exec = stream_certain_answer(&plan, &db, semantics, &opts).unwrap();
                    assert_eq!(
                        exec.answers, expected,
                        "streaming != materializing for {q} \
                         ({class}, {semantics}, extra {owa_extra}, threads {threads}, seed {seed})"
                    );
                    assert!(
                        !exec.early_exit || exec.answers.is_empty(),
                        "early exit on a non-empty certain answer for {q} (seed {seed})"
                    );
                    assert!(exec.worlds_visited >= 1);
                    assert!(exec.peak_worlds_in_flight <= exec.threads * 2);
                }
            }
        }
    }
}

/// The world-dedup collision fixed in this PR, end to end: `Int(1)` and
/// `Str("1")` display identically, and the old stringly dedup merged their
/// worlds, reporting a non-empty "certain" answer for a query whose certain
/// answer is ∅.
#[test]
fn stringly_dedup_collision_is_fixed_through_the_engine() {
    let db = DatabaseBuilder::new()
        .relation("R", &["a"])
        .relation("S", &["a"])
        .tuple("R", vec![Value::null(0)])
        .tuple("S", vec![Value::int(1)])
        .tuple("S", vec![Value::str("1")])
        .build();
    let lit = RaExpr::values(Relation::from_tuples(1, vec![Tuple::ints(&[1])]));
    let q = RaExpr::relation("R").intersection(lit);
    let report = Engine::new(&db)
        .options(EngineOptions::exhaustive())
        .ground_truth(&q)
        .unwrap();
    assert!(
        report.answers.is_empty(),
        "⊥0 ↦ Str(\"1\") is a world where R ∌ Int(1); got {}",
        report.answers
    );
}

/// Zero possible worlds must surface as an error, not as an empty "certain"
/// answer: with an all-null database, no query constants and zero fresh
/// constants there is nothing to value the nulls to.
#[test]
fn zero_worlds_error_instead_of_vacuous_certainty() {
    let db = DatabaseBuilder::new()
        .relation("R", &["a"])
        .tuple("R", vec![Value::null(0)])
        .build();
    let q = RaExpr::relation("R");
    let engine = Engine::new(&db)
        .options(EngineOptions::exhaustive().with_world_options(WorldOptions::with_fresh(0)));
    let err = engine.ground_truth(&q).unwrap_err();
    assert!(
        matches!(err, EngineError::Eval(EvalError::EmptyDomain { nulls: 1 })),
        "expected EmptyDomain, got {err:?}"
    );
}

/// Null-bearing query literals must not ride the naïve-evaluation theorem:
/// naïve evaluation equates a literal ⊥0 with a database ⊥0, an equality
/// that fails in every possible world. The classifier now routes such
/// queries to the conservative fragment, and the dispatched answer stays
/// sound where the old `Positive` classification over-reported.
#[test]
fn null_bearing_literals_are_dispatched_soundly() {
    let db = DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .tuple("R", vec![Value::int(1), Value::null(0)])
        .build();
    // π_{0,3}(σ_{#1 = #2}(R × {(⊥0, 7)})): joins the database null with the
    // literal null syntactically.
    let lit = RaExpr::values(Relation::from_tuples(
        2,
        vec![Tuple::new(vec![Value::null(0), Value::int(7)])],
    ));
    let q = RaExpr::relation("R")
        .product(lit)
        .select(relalgebra::predicate::Predicate::eq(
            relalgebra::predicate::Operand::col(1),
            relalgebra::predicate::Operand::col(2),
        ))
        .project(vec![0, 3]);

    // Ground truth: the certain answer is empty.
    let truth = Engine::new(&db)
        .options(EngineOptions::exhaustive())
        .ground_truth(&q)
        .unwrap();
    assert!(truth.answers.is_empty());

    // Naïve evaluation over-reports the complete tuple (1, 7)…
    let naive = Engine::new(&db)
        .plan_with(StrategyKind::NaiveExact, &q)
        .unwrap();
    assert!(naive.answers.contains(&Tuple::ints(&[1, 7])));
    // …so the classifier must keep the query out of the exact fragment and
    // the default dispatch must answer soundly.
    assert_eq!(naive.guarantee, Guarantee::NoGuarantee);
    let report = Engine::new(&db).plan(&q).unwrap();
    assert_eq!(report.class, QueryClass::FullRa);
    assert_ne!(report.strategy, StrategyKind::NaiveExact);
    assert!(
        report.answers.is_subset(&truth.answers),
        "dispatched answer must stay sound: got {}",
        report.answers
    );
}
