//! Differential fuzz lane for **analyzer-driven dispatch**: mixed queries
//! (a non-monotone difference core under a monotone top) over databases
//! whose null census keeps the core's relations null-free, replayed against
//! the possible-world oracle.
//!
//! What is being proved:
//!
//! 1. **The upgrade is real** — on this workload a class-only dispatcher
//!    (full RA, symbolic disabled) is stuck at
//!    `SoundApproximation`/`Sound`; the analyzer's subtree split must lift
//!    at least 20% of cases (in practice: all of them) to
//!    `NaiveExact`/`Exact`.
//! 2. **The upgrade is sound** — every upgraded answer equals the world
//!    oracle's certain answer exactly; every non-upgraded answer still
//!    honours its stated guarantee. Zero mismatches tolerated.
//!
//! `FUZZ_CASES` scales the sweep (default 32; CI runs 64;
//! `FUZZ_CASES=1000 cargo test --release --test analysis_differential` is
//! the acceptance-grade run).

use datagen::random::random_schema;
use datagen::{random_database_with_null_free, random_mixed_query, QueryGenConfig, RandomDbConfig};
use incomplete_data::prelude::*;
use releval::worlds::{stream_certain_answer, WorldOptions};

fn fuzz_cases() -> u64 {
    std::env::var("FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

/// Small instances (the oracle is exponential in nulls), with the
/// difference-core relations `S` and `T` kept null-free so the analyzer can
/// prove the core ground.
fn mixed_db(seed: u64) -> Database {
    random_database_with_null_free(
        &RandomDbConfig {
            tuples_per_relation: 2 + (seed % 3) as usize,
            domain_size: 3 + (seed % 2) as usize,
            distinct_nulls: 1 + (seed % 3) as usize,
            null_rate_percent: 20 + (seed * 13 % 50) as u32,
            seed: seed.wrapping_mul(0x9e37_79b9),
        },
        &["S", "T"],
    )
}

fn mixed_query(seed: u64) -> RaExpr {
    let schema = random_schema();
    let q = random_mixed_query(
        &schema,
        &QueryGenConfig {
            seed,
            ..Default::default()
        },
    );
    assert_eq!(
        relalgebra::classify::classify(&q),
        QueryClass::FullRa,
        "mixed queries are full RA by construction"
    );
    q
}

fn oracle(db: &Database, q: &RaExpr) -> Relation {
    let plan = PlannedQuery::new(q.clone(), db.schema()).unwrap();
    stream_certain_answer(
        &plan,
        db,
        relmodel::Semantics::Cwa,
        &WorldOptions::default(),
    )
    .unwrap()
    .answers
}

/// The acceptance sweep: without symbolic, a class-only dispatcher reports
/// `Sound` on every one of these full-RA queries; the analyzer must upgrade
/// ≥20% of them to `Exact` via the subtree split, and every report — up- or
/// downgraded — must match the oracle per its guarantee.
#[test]
fn subtree_split_upgrades_mixed_queries_with_zero_oracle_mismatches() {
    let cases = fuzz_cases();
    let mut upgraded = 0u64;
    for seed in 0..cases {
        let db = mixed_db(seed);
        let q = mixed_query(seed.wrapping_mul(7).wrapping_add(1));
        let truth = oracle(&db, &q);
        let report = Engine::new(&db)
            .options(EngineOptions::default().without_symbolic())
            .plan(&q)
            .unwrap();
        assert_eq!(report.class, QueryClass::FullRa, "seed {seed}: {q}");
        if report.guarantee == Guarantee::Exact {
            upgraded += 1;
            let analyzer = report
                .stats
                .analyzer
                .expect("analyzer stats on every report");
            assert!(
                analyzer.upgraded,
                "Exact without an upgrade: {q} (seed {seed})"
            );
            assert_eq!(
                report.strategy,
                StrategyKind::NaiveExact,
                "seed {seed}: {q}"
            );
            assert_eq!(
                report.answers, truth,
                "UPGRADE MISMATCH for {q} (seed {seed}) over\n{db}"
            );
        } else {
            // The class-only verdict: sound under-approximation.
            assert_eq!(report.guarantee, Guarantee::Sound, "seed {seed}: {q}");
            assert!(
                report.answers.is_subset(&truth),
                "SOUNDNESS VIOLATION for {q} (seed {seed}) over\n{db}"
            );
        }
    }
    // The ISSUE's acceptance bar is ≥20%; the generator is built so the
    // split applies essentially always, so demand much more.
    assert!(
        upgraded * 5 >= cases,
        "subtree split upgraded only {upgraded}/{cases} mixed queries (< 20%)"
    );
    assert!(
        upgraded * 10 >= cases * 9,
        "the mixed workload is engineered to split; {upgraded}/{cases} is suspicious"
    );
}

/// The default engine (symbolic enabled) on the same workload: whatever
/// route the planner takes — split-to-naïve or symbolic — the answer is
/// exact, and it matches the oracle on every case.
#[test]
fn default_engine_stays_exact_on_the_mixed_workload() {
    let cases = fuzz_cases();
    for seed in 0..cases {
        let db = mixed_db(seed.wrapping_add(0xbadd));
        let q = mixed_query(seed.wrapping_mul(11).wrapping_add(3));
        let report = Engine::new(&db).plan(&q).unwrap();
        assert_eq!(
            report.guarantee,
            Guarantee::Exact,
            "default CWA engine must stay exact on {q} (seed {seed})"
        );
        assert_eq!(
            report.answers,
            oracle(&db, &q),
            "MISMATCH for {q} (seed {seed}) over\n{db}"
        );
    }
}

/// The split itself is visible in the report: inlined subtree counts and
/// the plan preview agree with execution.
#[test]
fn split_reports_carry_the_analyzer_trail() {
    let db = mixed_db(4);
    let q = mixed_query(29);
    let engine = Engine::new(&db).options(EngineOptions::default().without_symbolic());
    let report = engine.plan(&q).unwrap();
    assert_eq!(report.strategy, StrategyKind::NaiveExact);
    assert_eq!(report.guarantee, Guarantee::Exact);
    let analyzer = report.stats.analyzer.unwrap();
    assert!(analyzer.upgraded);
    assert!(!analyzer.ground, "the query reads the nullable R");
    assert!(analyzer.inlined_subtrees >= 1, "the core must be inlined");
    // Preview == execution.
    assert_eq!(
        engine.select_strategy(&q, report.class),
        (report.strategy, report.guarantee)
    );
}
