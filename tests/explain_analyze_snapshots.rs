//! Golden-snapshot lane for EXPLAIN ANALYZE: the annotated physical plans
//! for a set of fixtures over the paper's orders/payments database are
//! checked into `tests/snapshots/explain_analyze.snap`. Row counts, batch
//! counts, and table-reuse accounting are exact and must not drift; the
//! measured times are nondeterministic by nature and are redacted to `<t>`
//! before comparison — but each fixture still asserts the timing invariant
//! (every per-node inclusive time fits inside the root's, which fits inside
//! `execute_time`) on the live values.
//!
//! To bless an intentional change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test --test explain_analyze_snapshots
//! ```

use std::fmt::Write as _;

use incomplete_data::prelude::*;

const SNAPSHOT_PATH: &str = "tests/snapshots/explain_analyze.snap";

/// Replaces every measured duration with `<t>`: the `time=…)` suffix of a
/// node annotation, and the duration in the `-- execute …` footer line.
fn redact(rendered: &str) -> String {
    let mut out = String::new();
    for line in rendered.lines() {
        if let Some(idx) = line.find("time=") {
            let _ = writeln!(out, "{}time=<t>)", &line[..idx]);
        } else if let Some(rest) = line.strip_prefix("-- execute ") {
            let tail = rest.split_once(" · ").map_or(rest, |(_, tail)| tail);
            let _ = writeln!(out, "-- execute <t> · {tail}");
        } else {
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

fn render() -> String {
    let db = relmodel::builder::orders_and_payments_example();
    // Pin the morsel size so batch counts don't follow the MORSEL_ROWS
    // environment variable into the snapshot.
    let engine = Engine::new(&db).options(EngineOptions::default().with_morsel_rows(1024));
    let fixtures: &[(&str, &str)] = &[
        ("scan", "Order"),
        ("positive projection", "project[#0](Order)"),
        (
            "fused hash join",
            "project[#1](select[#0 = #2](product(Order, Pay)))",
        ),
        (
            "difference of projections",
            "project[#0](Order) minus project[#1](Pay)",
        ),
        (
            "self-product reuses the build table",
            "select[#0 = #2](product(Order, Order))",
        ),
    ];
    let mut out = String::from(
        "# EXPLAIN ANALYZE snapshot (times redacted).\n\
         # Regenerate with: UPDATE_SNAPSHOTS=1 cargo test --test explain_analyze_snapshots\n\n",
    );
    for (title, text) in fixtures {
        let ea = engine
            .explain_analyze_text(text)
            .expect("fixture evaluates");

        // The timing invariant, checked on the live (unredacted) values:
        // profiles are inclusive, so the root bounds every node and the
        // whole measured execution bounds the root.
        let root = ea.root_profile().expect("plans have at least one node");
        for profile in &ea.profiles {
            assert!(
                profile.nanos <= root.nanos,
                "{title}: node {} ({} ns) exceeds the root ({} ns)",
                profile.id,
                profile.nanos,
                root.nanos
            );
        }
        assert!(
            u128::from(root.nanos) <= ea.execute_time.as_nanos(),
            "{title}: root time exceeds execute_time"
        );

        let _ = writeln!(out, "== {title}\n-- {text}\n{}", redact(&ea.to_string()));
    }
    out
}

#[test]
fn explain_analyze_matches_the_golden_snapshot() {
    let rendered = render();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(SNAPSHOT_PATH);
    if std::env::var("UPDATE_SNAPSHOTS").is_ok_and(|v| !v.is_empty() && v != "0") {
        std::fs::write(&path, &rendered).expect("snapshot is writable");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {SNAPSHOT_PATH} ({e}); \
             run UPDATE_SNAPSHOTS=1 cargo test --test explain_analyze_snapshots"
        )
    });
    assert!(
        rendered == expected,
        "explain analyze drifted from {SNAPSHOT_PATH}.\n\
         If the change is intentional, bless it with \
         UPDATE_SNAPSHOTS=1 cargo test --test explain_analyze_snapshots.\n\
         --- expected ---\n{expected}\n--- got ---\n{rendered}"
    );
}
