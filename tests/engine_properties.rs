//! Engine-level property tests: on deterministic sweeps of random databases
//! and queries covering every [`QueryClass`], the engine's answers must match
//! possible-world ground truth wherever it claims exactness, and **no report
//! may ever violate its stated guarantee**.

use datagen::random::random_schema;
use datagen::{
    random_database, random_division_query, random_positive_query, QueryGenConfig, RandomDbConfig,
};
use incomplete_data::prelude::*;
use releval::worlds::WorldOptions;

fn small_db(seed: u64) -> Database {
    random_database(&RandomDbConfig {
        tuples_per_relation: 3,
        domain_size: 4,
        distinct_nulls: 2,
        null_rate_percent: 30,
        seed,
    })
}

/// One random query per class, derived from the seed. Full RA queries are
/// built as differences of two independent positive queries.
fn query_for(class: QueryClass, seed: u64) -> RaExpr {
    let schema = random_schema();
    match class {
        QueryClass::Positive => random_positive_query(
            &schema,
            &QueryGenConfig {
                seed,
                ..Default::default()
            },
        ),
        QueryClass::RaCwa => random_division_query(
            &schema,
            &QueryGenConfig {
                seed,
                ..Default::default()
            },
        ),
        QueryClass::FullRa => {
            let a = random_positive_query(
                &schema,
                &QueryGenConfig {
                    seed,
                    ..Default::default()
                },
            );
            let b = random_positive_query(
                &schema,
                &QueryGenConfig {
                    seed: seed.wrapping_add(1000),
                    ..Default::default()
                },
            );
            a.difference(b)
        }
    }
}

const ALL_CLASSES: [QueryClass; 3] = [QueryClass::Positive, QueryClass::RaCwa, QueryClass::FullRa];

const CASES: u64 = 20;

/// The ground truth for checking a report, through the engine's own
/// ground-truth door. Under CWA the default enumeration *is* the certain
/// answer; under OWA it only visits minimal worlds, which would make the
/// oracle as blind as the code under test for non-monotone queries — so the
/// OWA oracle lets worlds grow by an extra tuple, strictly shrinking the
/// certain answer and making over-claims visible.
fn truth(db: &Database, semantics: Semantics, q: &RaExpr) -> Relation {
    let world_options = match semantics {
        Semantics::Cwa => WorldOptions::default(),
        Semantics::Owa => WorldOptions::with_owa_extra(1),
    };
    Engine::new(db)
        .semantics(semantics)
        .options(EngineOptions::exhaustive().with_world_options(world_options))
        .ground_truth(q)
        .unwrap()
        .answers
}

/// Asserts that a report's stated guarantee is not violated relative to the
/// classical certain answer.
fn assert_guarantee_holds(report: &CertainReport, truth: &Relation, context: &str) {
    match report.guarantee {
        Guarantee::Exact => {
            assert_eq!(&report.answers, truth, "Exact violated: {context}");
        }
        Guarantee::Sound => {
            assert!(report.answers.is_subset(truth), "Sound violated: {context}");
        }
        Guarantee::Complete => {
            assert!(
                truth.is_subset(&report.answers),
                "Complete violated: {context}"
            );
        }
        Guarantee::NoGuarantee => {}
    }
}

/// In exhaustive mode (budget respected on these tiny instances) the engine's
/// answer equals possible-world ground truth for *every* query class
/// under CWA, and its OWA reports — `exact` only for the monotone fragment,
/// `complete` beyond it — hold against an oracle whose worlds may grow.
#[test]
fn exhaustive_engine_matches_ground_truth_for_every_class() {
    for class in ALL_CLASSES {
        for seed in 0..CASES {
            let db = small_db(seed * 37 + 1);
            let q = query_for(class, seed * 11 + 3);
            assert_eq!(relalgebra::classify::classify(&q), class);
            for semantics in [Semantics::Owa, Semantics::Cwa] {
                let engine = Engine::new(&db)
                    .semantics(semantics)
                    .options(EngineOptions::exhaustive());
                let report = engine.plan(&q).unwrap();
                assert!(!report.stats.degraded, "tiny instances must fit the budget");
                let expected = if semantics == Semantics::Cwa || class == QueryClass::Positive {
                    Guarantee::Exact
                } else {
                    // Finite OWA enumeration cannot be exact for
                    // non-monotone classes; the engine must say so.
                    Guarantee::Complete
                };
                assert_eq!(
                    report.guarantee, expected,
                    "guarantee for {q} ({class}, {semantics}, seed {seed})"
                );
                assert_guarantee_holds(
                    &report,
                    &truth(&db, semantics, &q),
                    &format!("{q} ({class}, {semantics}, seed {seed})"),
                );
            }
        }
    }
}

/// With default options the engine claims `Exact` precisely when a theorem
/// backs it — naïve evaluation on its fragment, or the symbolic c-table
/// strategy under CWA (strong representation + a complete certainty
/// solver) — and every weaker claim it makes instead is honoured.
#[test]
fn default_engine_guarantees_are_never_violated() {
    for class in ALL_CLASSES {
        for seed in 0..CASES {
            let db = small_db(seed * 23 + 5);
            let q = query_for(class, seed * 13 + 7);
            for semantics in [Semantics::Owa, Semantics::Cwa] {
                let report = Engine::new(&db).semantics(semantics).plan(&q).unwrap();
                // NB: this equivalence presumes what the generators deliver:
                // no null-bearing `Values` literals (symbolic eligible) and
                // databases small enough that a punt-fallback stays within
                // the world budget. Outside those bounds the engine degrades
                // to a weaker (still honoured) guarantee.
                let theorem_backed =
                    class.naive_evaluation_sound(semantics) || semantics == Semantics::Cwa;
                assert_eq!(
                    report.guarantee == Guarantee::Exact,
                    theorem_backed,
                    "Exact must coincide with a theorem for {q} under {semantics}"
                );
                let t = truth(&db, semantics, &q);
                assert_guarantee_holds(
                    &report,
                    &t,
                    &format!("{q} ({class}, {semantics}, seed {seed})"),
                );
            }
        }
    }
}

/// Forced strategies also honour their reported guarantees — including the
/// deliberately weak ones (naïve on full RA, the 3VL baseline).
#[test]
fn forced_strategies_honour_their_guarantees() {
    let strategies = [
        StrategyKind::NaiveExact,
        StrategyKind::WorldsGroundTruth,
        StrategyKind::ThreeValuedBaseline,
        StrategyKind::SoundApproximation,
        StrategyKind::SymbolicCTable,
    ];
    for class in ALL_CLASSES {
        for seed in 0..CASES / 2 {
            let db = small_db(seed * 53 + 9);
            let q = query_for(class, seed * 29 + 11);
            for semantics in [Semantics::Owa, Semantics::Cwa] {
                let t = truth(&db, semantics, &q);
                let engine = Engine::new(&db)
                    .semantics(semantics)
                    .options(EngineOptions::exhaustive());
                for strategy in strategies {
                    let report = engine.plan_with(strategy, &q).unwrap();
                    assert_eq!(report.strategy, strategy);
                    assert_guarantee_holds(
                        &report,
                        &t,
                        &format!("forced {strategy} on {q} ({class}, {semantics}, seed {seed})"),
                    );
                }
            }
        }
    }
}

/// When the world budget is too small, exhaustive mode degrades to the
/// approximation *explicitly* — the degraded report still honours its
/// (weaker) guarantee instead of silently over-claiming.
#[test]
fn degraded_reports_stay_honest() {
    for seed in 0..CASES / 2 {
        let db = small_db(seed * 43 + 13);
        if db.null_ids().is_empty() {
            continue;
        }
        let q = query_for(QueryClass::FullRa, seed * 31 + 17);
        // Symbolic would answer these exactly without any worlds; disable it
        // to exercise the budget-degradation path it normally shadows.
        let starved = Engine::new(&db).options(
            EngineOptions::exhaustive()
                .with_max_worlds(1)
                .without_symbolic(),
        );
        let report = starved.plan(&q).unwrap();
        assert!(
            report.stats.degraded,
            "a 1-world budget must force degradation"
        );
        assert_ne!(report.guarantee, Guarantee::Exact);
        let t = truth(&db, Semantics::Cwa, &q);
        assert_guarantee_holds(&report, &t, &format!("degraded on {q} (seed {seed})"));
    }
}

/// The OWA over-approximation guarantee for `RA_cwa`: the naïve answer
/// contains the OWA certain answer even when worlds may grow.
#[test]
fn racwa_owa_reports_are_complete_even_with_growing_worlds() {
    for seed in 0..CASES / 2 {
        let db = small_db(seed * 61 + 19);
        let q = query_for(QueryClass::RaCwa, seed * 47 + 23);
        let report = Engine::new(&db).semantics(Semantics::Owa).plan(&q).unwrap();
        assert_eq!(report.guarantee, Guarantee::Complete);
        // Ground truth with worlds allowed to grow by one extra tuple.
        let grown = Engine::new(&db)
            .semantics(Semantics::Owa)
            .options(
                EngineOptions::exhaustive().with_world_options(WorldOptions::with_owa_extra(1)),
            )
            .ground_truth(&q)
            .unwrap()
            .answers;
        assert!(
            grown.is_subset(&report.answers),
            "Complete violated under growing worlds for {q} (seed {seed})"
        );
    }
}
