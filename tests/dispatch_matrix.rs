//! Dispatch-matrix coverage: one table-driven test asserting, for **every**
//! `QueryClass` × semantics × planner mode, which strategy the engine picks
//! and which guarantee it reports. This locks the classify-and-dispatch
//! contract — the one PR 2 had to patch twice — so any future change to the
//! planner is a *visible* diff in this table, never a silent regression.

use incomplete_data::prelude::*;
use relalgebra::classify::classify;

/// Representative queries per class over the orders/payments schema.
fn query_for(class: QueryClass) -> RaExpr {
    let (text, expected) = match class {
        QueryClass::Positive => ("project[#0](Order)", QueryClass::Positive),
        // Division by a base-relation projection is the emblematic RA_cwa
        // operator.
        QueryClass::RaCwa => (
            "product(project[#0](Order), project[#1](Pay)) divide project[#1](Pay)",
            QueryClass::RaCwa,
        ),
        QueryClass::FullRa => (
            "project[#0](Order) minus project[#1](Pay)",
            QueryClass::FullRa,
        ),
    };
    let q = incomplete_data::qparser::parse(text).unwrap();
    assert_eq!(classify(&q), expected, "fixture drift for {text}");
    q
}

/// One planner mode of the matrix.
#[derive(Clone, Copy, Debug)]
enum Mode {
    Default,
    Exhaustive,
    DefaultNoSymbolic,
    ExhaustiveNoSymbolic,
}

fn options(mode: Mode) -> EngineOptions {
    match mode {
        Mode::Default => EngineOptions::default(),
        Mode::Exhaustive => EngineOptions::exhaustive(),
        Mode::DefaultNoSymbolic => EngineOptions::default().without_symbolic(),
        Mode::ExhaustiveNoSymbolic => EngineOptions::exhaustive().without_symbolic(),
    }
}

#[test]
fn the_dispatch_matrix() {
    use Guarantee::*;
    use Mode::*;
    use QueryClass::*;
    use Semantics::*;
    use StrategyKind::*;

    // (class, semantics, mode) → (strategy, guarantee). Every row of the
    // engine's documented dispatch table, plus the symbolic/exhaustive
    // interactions the docs describe in prose.
    let matrix: &[(QueryClass, Semantics, Mode, StrategyKind, Guarantee)] = &[
        // Positive: the naïve theorem covers both semantics, all modes.
        (Positive, Cwa, Default, NaiveExact, Exact),
        (Positive, Owa, Default, NaiveExact, Exact),
        (Positive, Cwa, Exhaustive, NaiveExact, Exact),
        (Positive, Owa, Exhaustive, NaiveExact, Exact),
        (Positive, Cwa, DefaultNoSymbolic, NaiveExact, Exact),
        // RA_cwa: naïve under CWA; approximation (complete) under OWA,
        // upgrading to enumeration in exhaustive mode.
        (RaCwa, Cwa, Default, NaiveExact, Exact),
        (RaCwa, Owa, Default, SoundApproximation, Complete),
        (RaCwa, Cwa, Exhaustive, NaiveExact, Exact),
        (RaCwa, Owa, Exhaustive, WorldsGroundTruth, Complete),
        (RaCwa, Owa, DefaultNoSymbolic, SoundApproximation, Complete),
        // Full RA: the symbolic strategy owns CWA (in every mode where it is
        // enabled); OWA keeps the pre-symbolic rules.
        (FullRa, Cwa, Default, SymbolicCTable, Exact),
        (FullRa, Cwa, Exhaustive, SymbolicCTable, Exact),
        (FullRa, Cwa, DefaultNoSymbolic, SoundApproximation, Sound),
        (FullRa, Cwa, ExhaustiveNoSymbolic, WorldsGroundTruth, Exact),
        (FullRa, Owa, Default, SoundApproximation, NoGuarantee),
        (FullRa, Owa, Exhaustive, WorldsGroundTruth, Complete),
        (
            FullRa,
            Owa,
            DefaultNoSymbolic,
            SoundApproximation,
            NoGuarantee,
        ),
    ];

    let db = relmodel::builder::orders_and_payments_example();
    for &(class, semantics, mode, strategy, guarantee) in matrix {
        let q = query_for(class);
        let engine = Engine::new(&db).semantics(semantics).options(options(mode));
        let context = format!("{class:?} × {semantics} × {mode:?}");
        // The preview and the executed report must agree with the table —
        // and with each other.
        assert_eq!(
            engine.select_strategy(&q, class),
            (strategy, guarantee),
            "select_strategy for {context}"
        );
        let report = engine.plan(&q).unwrap();
        assert_eq!(report.strategy, strategy, "executed strategy for {context}");
        assert_eq!(report.guarantee, guarantee, "guarantee for {context}");
        assert_eq!(report.class, class, "classified class for {context}");
        assert!(!report.stats.degraded, "no degradation expected: {context}");
    }
}

/// The consistent-answers rows of the matrix: clean database → delegate to
/// the certain pipeline; dirty within the repair budget → repair
/// enumeration, exact; dirty beyond it → conflict-free core, sound, with
/// the reason recorded. One row per query class per planner state.
#[test]
fn the_consistent_answers_rows() {
    use engine::Semantics as ES;

    // R(k, v) with key k and S(v), queries covering all three classes.
    let queries: &[(QueryClass, &str)] = &[
        (QueryClass::Positive, "project[#1](R)"),
        (QueryClass::RaCwa, "R divide S"),
        (QueryClass::FullRa, "project[#1](R) minus S"),
    ];
    let clean = relmodel::DatabaseBuilder::new()
        .relation("R", &["k", "v"])
        .relation("S", &["v"])
        .key("R", &["k"])
        .ints("R", &[1, 10])
        .ints("R", &[2, 30])
        .ints("S", &[10])
        .build();
    let dirty = relmodel::DatabaseBuilder::new()
        .relation("R", &["k", "v"])
        .relation("S", &["v"])
        .key("R", &["k"])
        .ints("R", &[1, 10])
        .ints("R", &[1, 20])
        .ints("R", &[2, 30])
        .ints("S", &[10])
        .build();

    for &(class, text) in queries {
        let q = incomplete_data::qparser::parse(text).unwrap();
        assert_eq!(classify(&q), class, "fixture drift for {text}");

        // Clean: delegate to the certain pipeline, `Exact`. The clean
        // database is also *complete*, so the analyzer proves every query
        // ground and the delegate is naïve evaluation across all classes —
        // even full RA needs no symbolic machinery when no null exists.
        let report = Engine::new(&clean)
            .semantics(ES::ConsistentAnswers)
            .plan(&q)
            .unwrap();
        assert_eq!(
            report.strategy,
            StrategyKind::NaiveExact,
            "clean × {class:?}"
        );
        assert_eq!(report.guarantee, Guarantee::Exact, "clean × {class:?}");
        assert_eq!(report.stats.violations, Some(0), "clean × {class:?}");

        // Dirty, within budget: repair enumeration, exact for every class.
        let report = Engine::new(&dirty)
            .semantics(ES::ConsistentAnswers)
            .plan(&q)
            .unwrap();
        assert_eq!(
            report.strategy,
            StrategyKind::RepairEnumeration,
            "dirty × {class:?}"
        );
        assert_eq!(report.guarantee, Guarantee::Exact, "dirty × {class:?}");
        assert!(!report.stats.degraded, "dirty × {class:?}");

        // Dirty, starved budget: the sound core with the reason recorded.
        let report = Engine::new(&dirty)
            .semantics(ES::ConsistentAnswers)
            .options(EngineOptions::default().with_max_repairs(1))
            .plan(&q)
            .unwrap();
        assert_eq!(
            report.strategy,
            StrategyKind::ConflictFreeCore,
            "starved × {class:?}"
        );
        assert_eq!(report.guarantee, Guarantee::Sound, "starved × {class:?}");
        assert!(report.stats.degraded, "starved × {class:?}");
        assert!(
            matches!(
                report.stats.fallback,
                Some(FallbackReason::RepairBudget {
                    estimated: 2,
                    budget: 1
                })
            ),
            "starved × {class:?}: {:?}",
            report.stats.fallback
        );
    }
}

/// The analyzer rows of the matrix: per query shape × **null census**,
/// which strategy and guarantee the census-aware dispatch yields. These are
/// the upgrades (and non-upgrades) the static analyzer adds on top of the
/// class-based table above — the same query moves between rows as the
/// database's nulls move.
#[test]
fn the_analyzer_rows() {
    use Guarantee::*;
    use StrategyKind::*;

    // R(a, b), S(a): one null-free instance, one with a null in R.
    let complete = relmodel::DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .relation("S", &["a"])
        .ints("R", &[1, 10])
        .ints("R", &[2, 20])
        .ints("S", &[1])
        .build();
    let nullbearing = relmodel::DatabaseBuilder::new()
        .relation("R", &["a", "b"])
        .relation("S", &["a"])
        .ints("R", &[1, 10])
        .tuple("R", vec![relmodel::Value::int(2), relmodel::Value::null(0)])
        .ints("S", &[1])
        .build();

    // A non-monotone full-RA query and a monotone one (σ≠ is full RA but
    // instance-monotone).
    let difference = "project[#0](R) minus S";
    let monotone = "project[#0](select[#1 != 3](R))";
    // A mixed query: ground difference core over S under a union reading
    // the nullable R.
    let mixed = "(S minus project[#0](R)) union project[#0](R)";
    let mixed_ground_core = "(S minus S) union project[#0](R)";

    // (query, db, semantics, no_symbolic, strategy, guarantee, upgraded)
    let rows: &[(
        &str,
        &relmodel::Database,
        Semantics,
        bool,
        StrategyKind,
        Guarantee,
        bool,
    )] = &[
        // Groundness upgrade: a complete database makes full RA naïve-exact
        // under CWA — and under OWA it does NOT (supersets can shrink a
        // difference), so the class rules keep ruling there.
        (
            difference,
            &complete,
            Semantics::Cwa,
            false,
            NaiveExact,
            Exact,
            true,
        ),
        (
            difference,
            &complete,
            Semantics::Owa,
            false,
            SoundApproximation,
            NoGuarantee,
            false,
        ),
        // With a null in reach, CWA full RA goes symbolic as before.
        (
            difference,
            &nullbearing,
            Semantics::Cwa,
            false,
            SymbolicCTable,
            Exact,
            false,
        ),
        // Monotonicity upgrade: monotone + ground is exact even under OWA …
        (
            monotone,
            &complete,
            Semantics::Owa,
            false,
            NaiveExact,
            Exact,
            true,
        ),
        // … and a monotone query over nulls lets OWA borrow the CWA
        // machinery (symbolic, exact) — the owa-as-cwa rule.
        (
            monotone,
            &nullbearing,
            Semantics::Owa,
            false,
            SymbolicCTable,
            Exact,
            false,
        ),
        (
            monotone,
            &nullbearing,
            Semantics::Cwa,
            false,
            SymbolicCTable,
            Exact,
            false,
        ),
        // Subtree split: the ground difference core is inlined and the
        // positive remainder runs naïvely — exact with no symbolic engine
        // at all.
        (
            mixed_ground_core,
            &nullbearing,
            Semantics::Cwa,
            true,
            NaiveExact,
            Exact,
            true,
        ),
        // The same shape with the nullable R inside the core cannot split:
        // the class verdict (sound approximation) stands.
        (
            mixed,
            &nullbearing,
            Semantics::Cwa,
            true,
            SoundApproximation,
            Sound,
            false,
        ),
    ];

    for &(text, db, semantics, no_symbolic, strategy, guarantee, upgraded) in rows {
        let q = incomplete_data::qparser::parse(text).unwrap();
        let options = if no_symbolic {
            EngineOptions::default().without_symbolic()
        } else {
            EngineOptions::default()
        };
        let engine = Engine::new(db).semantics(semantics).options(options);
        let context = format!("{text} × {semantics} × no_symbolic={no_symbolic}");
        let class = classify(&q);
        assert_eq!(
            engine.select_strategy(&q, class),
            (strategy, guarantee),
            "select_strategy for {context}"
        );
        let report = engine.plan(&q).unwrap();
        assert_eq!(report.strategy, strategy, "strategy for {context}");
        assert_eq!(report.guarantee, guarantee, "guarantee for {context}");
        let analyzer = report
            .stats
            .analyzer
            .expect("analyzer stats are always reported");
        assert_eq!(analyzer.upgraded, upgraded, "upgrade flag for {context}");
    }
}

#[test]
fn forced_strategies_report_honest_guarantees_per_class() {
    // plan_with computes the guarantee for the *actual* class, never the
    // forced strategy's best case.
    let db = relmodel::builder::orders_and_payments_example();
    let engine = Engine::new(&db);
    let full_ra = query_for(QueryClass::FullRa);
    let cases = [
        (StrategyKind::NaiveExact, Guarantee::NoGuarantee),
        (StrategyKind::ThreeValuedBaseline, Guarantee::NoGuarantee),
        (StrategyKind::SoundApproximation, Guarantee::Sound),
        (StrategyKind::SymbolicCTable, Guarantee::Exact),
        (StrategyKind::WorldsGroundTruth, Guarantee::Exact),
    ];
    for (strategy, guarantee) in cases {
        let report = engine.plan_with(strategy, &full_ra).unwrap();
        assert_eq!(report.strategy, strategy);
        assert_eq!(report.guarantee, guarantee, "forced {strategy}");
    }
}
